"""Analytic model of the message-logging recovery plane.

Companion to :mod:`~repro.models.cr_model`: where that module prices a
checkpoint/restart round-trip, this one prices what the ``"logged"``
recovery plane adds (sender logs, replay traffic) and removes (the
world-wide bootstrap and the survivors' restores) relative to global
rollback, so ablations can predict where partial rollback wins.

Steady state, per rank::

    log_volume = r * f * b * keep * T_ckpt_interval

``r`` messages/s of ``b`` bytes, a fraction ``f`` of which cross a
recovery-unit boundary (only those are logged); entries are garbage-
collected when the job-wide stable floor passes them, which retains
``keep`` checkpoint intervals' worth (the engine keeps the last
``keep`` datasets).

Recovery latency decomposes as::

    global  = bootstrap(world) + T_restart
    partial = bootstrap(unit)  + T_restart + replay_bytes / net_bw

``T_restart`` (from :func:`~repro.models.cr_model.restart_time`) is
paid in both planes: the replacement's XOR rebuild dominates either
way, and the re-executed iterations take the same wall-clock whether
everyone redoes them (global) or survivors idle at their next
cross-unit receive while the restarted ranks catch up (partial).  What
partial avoids is the *world-scoped* PMGR bootstrap -- it re-syncs only
the failed recovery unit -- and what it pays is pushing the logged
backlog through the restarted rank's NIC.  Hence the crossover: partial
beats global while the replay backlog is smaller than the bootstrap
saving times the wire speed.
"""

from __future__ import annotations

from repro.models.cr_model import restart_time

__all__ = [
    "log_volume",
    "replay_latency",
    "partial_recovery_latency",
    "global_recovery_latency",
    "replay_crossover_bytes",
    "partial_beats_global",
]


def log_volume(
    msg_rate_hz: float,
    avg_msg_bytes: float,
    cross_unit_fraction: float,
    checkpoint_interval_s: float,
    keep: int = 2,
) -> float:
    """Steady-state sender-log bytes retained per rank."""
    if msg_rate_hz < 0 or avg_msg_bytes < 0:
        raise ValueError("rates and sizes must be >= 0")
    if not 0.0 <= cross_unit_fraction <= 1.0:
        raise ValueError("cross_unit_fraction must be in [0, 1]")
    if checkpoint_interval_s < 0:
        raise ValueError("checkpoint_interval_s must be >= 0")
    if keep < 1:
        raise ValueError("keep must be >= 1")
    return (
        msg_rate_hz * cross_unit_fraction * avg_msg_bytes
        * checkpoint_interval_s * keep
    )


def replay_latency(replay_bytes: float, net_bw: float) -> float:
    """Time to push the logged backlog into one restarted rank.

    Senders stream concurrently but share the restarted rank's NIC, so
    the receiver wire is the bottleneck regardless of sender count."""
    if replay_bytes < 0:
        raise ValueError("replay_bytes must be >= 0")
    if net_bw <= 0:
        raise ValueError("net_bw must be positive")
    return replay_bytes / net_bw


def partial_recovery_latency(
    s: float,
    group_size: int,
    mem_bw: float,
    net_bw: float,
    unit_bootstrap_s: float,
    replay_bytes: float,
    procs_per_node: int = 1,
    scheme: str = "xor",
) -> float:
    """Modelled failure-to-resumption latency under partial rollback."""
    return (
        unit_bootstrap_s
        + restart_time(s, group_size, mem_bw, net_bw, procs_per_node, scheme)
        + replay_latency(replay_bytes, net_bw / procs_per_node)
    )


def global_recovery_latency(
    s: float,
    group_size: int,
    mem_bw: float,
    net_bw: float,
    world_bootstrap_s: float,
    procs_per_node: int = 1,
    scheme: str = "xor",
) -> float:
    """Modelled failure-to-resumption latency under global rollback.

    Survivors' local restores (``s/mem_bw`` each, in parallel) hide
    behind the replacement's network rebuild, so the restart term is
    the same as partial's; the world-scoped bootstrap is not."""
    return (
        world_bootstrap_s
        + restart_time(s, group_size, mem_bw, net_bw, procs_per_node, scheme)
    )


def replay_crossover_bytes(
    world_bootstrap_s: float,
    unit_bootstrap_s: float,
    net_bw: float,
    procs_per_node: int = 1,
) -> float:
    """The replay backlog at which the planes break even.

    Below this, partial rollback recovers faster; above it, the logged
    backlog costs more to replay than the world bootstrap it avoids."""
    if net_bw <= 0:
        raise ValueError("net_bw must be positive")
    saving = world_bootstrap_s - unit_bootstrap_s
    return max(0.0, saving) * net_bw / procs_per_node


def partial_beats_global(
    s: float,
    group_size: int,
    mem_bw: float,
    net_bw: float,
    world_bootstrap_s: float,
    unit_bootstrap_s: float,
    replay_bytes: float,
    procs_per_node: int = 1,
    scheme: str = "xor",
) -> bool:
    """True when the modelled partial-rollback latency is lower."""
    return partial_recovery_latency(
        s, group_size, mem_bw, net_bw, unit_bootstrap_s, replay_bytes,
        procs_per_node, scheme,
    ) < global_recovery_latency(
        s, group_size, mem_bw, net_bw, world_bootstrap_s,
        procs_per_node, scheme,
    )
