"""Fig 17: efficiency of multilevel C/R under scaled failure rates.

Two nested renewal models:

* **level 1** -- XOR C/R handles rate-``l1`` failures with checkpoint
  cost ``c1`` and restart cost ``r1``; its efficiency ``e1`` comes from
  the single-level factor (:mod:`repro.models.vaidya`) at the optimal
  interval.
* **level 2** -- rate-``l2`` failures destroy everything since the last
  PFS checkpoint (cost ``c2``, restart ``r2``).  Useful work accrues at
  rate ``e1`` between L2 checkpoints; the expected wall time of an L2
  segment producing ``U`` useful seconds is
  ``exp(l2*r2) * (exp(l2*(U/e1 + c2)) - 1) / l2``, optimised over ``U``.

This reproduces the paper's qualitative result: if only level-1 rates
grow, efficiency stays high (L1 C/R is cheap and constant-cost); if
level-2 rates *and* level-2 cost both scale 50x with 10 GB/node
checkpoints, ``l2 * c2`` approaches/exceeds 1 and efficiency collapses
below a few percent.
"""

from __future__ import annotations

import math

from repro.models.vaidya import (
    _check_finite,
    expected_runtime_factor,
    optimal_interval,
)

__all__ = [
    "single_level_efficiency",
    "multilevel_efficiency",
    "replication_efficiency",
    "replication_vs_cr_crossover",
]


def single_level_efficiency(ckpt_cost: float, mtbf: float, restart_cost: float = 0.0) -> float:
    """Best-case efficiency (useful/wall) of one C/R level."""
    _check_finite(ckpt_cost=ckpt_cost, mtbf=mtbf, restart_cost=restart_cost)
    if ckpt_cost < 0:
        raise ValueError("ckpt_cost must be >= 0")
    if mtbf <= 0:
        raise ValueError("mtbf must be positive")
    if restart_cost < 0:
        raise ValueError("restart_cost must be >= 0")
    if ckpt_cost == 0.0:
        return 1.0
    t = optimal_interval(ckpt_cost, mtbf, restart_cost)
    factor = expected_runtime_factor(t, ckpt_cost, mtbf, restart_cost)
    return 1.0 / factor


def multilevel_efficiency(
    c1: float,
    r1: float,
    l1: float,
    c2: float,
    r2: float,
    l2: float,
    level2_vulnerable: bool = True,
) -> float:
    """Efficiency of the combined L1 (XOR) + L2 (PFS) scheme.

    ``c``/``r`` are checkpoint/restart costs in seconds, ``l`` are
    failure rates per second.  Failures of either level during an L2
    segment are accounted: level-1 ones through ``e1``, level-2 ones
    through the outer renewal term.

    With ``level2_vulnerable`` (default), the long PFS write itself is
    exposed to the *combined* failure rate -- any failure during the
    write aborts and restarts it (after a cheap L1 recovery).  Once the
    PFS write time approaches the machine MTBF this term explodes,
    which is the mechanism behind Fig 17's efficiency collapse when
    both failure rates and 10 GB/node level-2 costs scale 50x.
    """
    _check_finite(c1=c1, r1=r1, l1=l1, c2=c2, r2=r2, l2=l2)
    for name, v in (("c1", c1), ("r1", r1), ("c2", c2), ("r2", r2)):
        if v < 0:
            raise ValueError(f"{name} must be >= 0")
    if l1 < 0 or l2 < 0:
        raise ValueError("failure rates must be >= 0")

    e1 = single_level_efficiency(c1, 1.0 / l1, r1) if l1 > 0 else 1.0
    if l2 == 0:
        return e1

    # Expected wall time of one L2 checkpoint write.
    l_all = l1 + l2
    if level2_vulnerable and c2 > 0 and l_all > 0:
        x = l_all * c2
        if x > 700:
            return 0.0
        write_time = math.exp(l_all * r1) * (math.exp(x) - 1.0) / l_all
        # An L2 *recovery* rereads the dataset under the same exposure.
        x_r = l_all * r2
        recover_time = (
            math.exp(l_all * r1) * (math.exp(x_r) - 1.0) / l_all
            if 0 < x_r <= 700
            else (r2 if x_r == 0 else math.inf)
        )
        if not math.isfinite(recover_time):
            return 0.0
    else:
        write_time = c2
        recover_time = r2

    # Outer level: choose U (useful seconds per L2 segment) to minimise
    # expected wall per useful second.
    def outer_factor(useful: float) -> float:
        wall_nofail = useful / e1 + write_time
        x = l2 * wall_nofail
        if x > 700:
            return math.inf
        return math.exp(l2 * recover_time) * (math.exp(x) - 1.0) / (l2 * useful)

    # Golden-section over U, bracketed around the Young-style estimate
    # for the outer level (using effective cost c2*e1 in useful time).
    guess = math.sqrt(2.0 * max(write_time, 1e-9) * e1 / l2)
    lo, hi = max(1e-6, 1e-3 * guess), max(1e3 * guess, 10.0 * write_time * e1 + 1.0)
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc, fd = outer_factor(c), outer_factor(d)
    for _ in range(200):
        if b - a < 1e-9 * max(1.0, b):
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = outer_factor(c)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = outer_factor(d)
    best = outer_factor(0.5 * (a + b))
    if not math.isfinite(best):
        return 0.0
    return 1.0 / best


def replication_efficiency(
    degree: int,
    mtbf: float,
    n_nodes: int,
    ckpt_cost: float = 10.0,
    restart_cost: float = 10.0,
    rearm_window: float = 60.0,
    failover_cost: float = 0.2,
) -> float:
    """Efficiency (useful/wall) of ``degree``-modular rank replication.

    ``mtbf`` is the *per-node* MTBF in seconds and ``n_nodes`` the
    virtual job size in nodes (each backed by ``degree`` physical
    nodes, so the hardware bill is ``degree * n_nodes``).

    A single copy's death costs only ``failover_cost`` seconds (the
    replica is promoted in place -- no rollback).  The job only falls
    back to C/R when *all* copies of one virtual rank die inside the
    ``rearm_window`` it takes to re-arm a fresh replica from a spare:
    first deaths arrive at rate ``n * d * lam`` and each must be
    chased by ``d - 1`` further copy-deaths (probability ``lam * w``
    apiece), giving a catastrophic MTBF of
    ``1 / (n * d * lam * (lam * w)^(d-1))``.  Checkpointing still runs
    underneath at that far-longer effective MTBF, so the replicated
    efficiency is ``(1/degree)`` (the redundant hardware) times the
    single-level C/R efficiency at the catastrophic MTBF, discounted by
    failover time (FTHP-MPI's model shape; ReStore's in-memory replica
    state keeps ``failover_cost`` near zero).

    ``degree=1`` degenerates exactly to plain C/R at the system MTBF.
    """
    _check_finite(mtbf=mtbf, ckpt_cost=ckpt_cost, restart_cost=restart_cost,
                  rearm_window=rearm_window, failover_cost=failover_cost)
    if degree < 1:
        raise ValueError("degree must be >= 1")
    if mtbf <= 0:
        raise ValueError("mtbf must be positive")
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if ckpt_cost < 0 or restart_cost < 0:
        raise ValueError("costs must be >= 0")
    if rearm_window <= 0:
        raise ValueError("rearm_window must be positive")
    if failover_cost < 0:
        raise ValueError("failover_cost must be >= 0")
    lam = 1.0 / mtbf
    if degree == 1:
        return single_level_efficiency(ckpt_cost, mtbf / n_nodes, restart_cost)
    catastrophic_rate = n_nodes * degree * lam * (lam * rearm_window) ** (degree - 1)
    if catastrophic_rate <= 0:
        e_cr = 1.0
    else:
        e_cr = single_level_efficiency(
            ckpt_cost, 1.0 / catastrophic_rate, restart_cost
        )
    # Failovers steal wall time at the full copy-death rate.
    failover_drag = 1.0 + n_nodes * degree * lam * failover_cost
    return (1.0 / degree) * e_cr / failover_drag


def replication_vs_cr_crossover(
    n_nodes: int,
    degree: int = 2,
    ckpt_cost: float = 10.0,
    restart_cost: float = 10.0,
    rearm_window: float = 60.0,
    failover_cost: float = 0.2,
    lo: float = 1e-1,
    hi: float = 1e9,
) -> float:
    """Node-MTBF (seconds) below which replication beats plain C/R.

    Answers the FTHP-MPI question the paper's Fig 17 never plotted: at
    what per-node MTBF does ``1/degree`` hardware redundancy out-run
    checkpoint/restart at system MTBF ``mtbf/n``?  Reliable machines
    (large MTBF) favour C/R -- replication can never beat ``1/degree``
    efficiency -- while failure-dense machines collapse C/R's renewal
    term long before they dent the replicated plane's catastrophic
    MTBF.  Bisects the gap on a log scale; raises if no crossover
    exists inside ``[lo, hi]``.
    """

    def gap(mtbf: float) -> float:
        repl = replication_efficiency(
            degree, mtbf, n_nodes, ckpt_cost, restart_cost,
            rearm_window, failover_cost,
        )
        cr = single_level_efficiency(ckpt_cost, mtbf / n_nodes, restart_cost)
        return repl - cr

    # Both planes collapse to ~0 efficiency at extreme failure density,
    # so the endpoints themselves need not bracket: scan log-spaced
    # samples for the highest MTBF where replication still wins, then
    # bisect against its right neighbour.
    samples = 120
    la, lb = math.log(lo), math.log(hi)
    a = b = None
    for i in range(samples):
        x = la + (lb - la) * i / (samples - 1)
        if gap(math.exp(x)) > 0:
            a = x
        elif a is not None:
            b = x
            break
    if a is None or b is None:
        raise ValueError(
            f"no replication-vs-C/R crossover in [{lo:g}, {hi:g}] s for "
            f"n_nodes={n_nodes}, degree={degree}"
        )
    for _ in range(200):
        m = 0.5 * (a + b)
        if gap(math.exp(m)) > 0:
            a = m  # replication still winning: crossover is above
        else:
            b = m
        if b - a < 1e-12 * max(1.0, abs(b)):
            break
    return math.exp(0.5 * (a + b))
