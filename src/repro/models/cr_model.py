"""Section V-B: the XOR checkpoint/restart time model.

For ``s`` bytes of checkpoint data per rank in an XOR group of ``n``::

    T_ckpt    = s/mem_bw  +  (s + s/(n-1))/net_bw  +  s/mem_bw
    T_restart = T_ckpt    +  s/net_bw               (the Gather stage)

The three checkpoint terms are the memcpy snapshot, the ring-pipelined
parity transfer, and the XOR compute (memory-bound).  The model is
independent of the *total* process count -- the paper's scalability
argument for Fig 12 -- but when several ranks share a node their
transfers share the NIC, so per-NODE quantities divide the node
bandwidths accordingly (``procs_per_node`` parameter).
"""

from __future__ import annotations

__all__ = ["checkpoint_time", "restart_time", "per_node_throughput"]


def checkpoint_time(
    s: float,
    group_size: int,
    mem_bw: float,
    net_bw: float,
    procs_per_node: int = 1,
) -> float:
    """Modelled level-1 checkpoint time for ``s`` bytes/rank.

    ``procs_per_node`` ranks share the node's memory bus and NIC, so
    effective per-rank bandwidths scale down by that factor (they all
    checkpoint simultaneously).
    """
    if group_size < 2:
        raise ValueError("group_size must be >= 2")
    if s < 0:
        raise ValueError("s must be >= 0")
    mem = mem_bw / procs_per_node
    net = net_bw / procs_per_node
    transfer = s + s / (group_size - 1)
    return s / mem + transfer / net + s / mem


def restart_time(
    s: float,
    group_size: int,
    mem_bw: float,
    net_bw: float,
    procs_per_node: int = 1,
) -> float:
    """Modelled restart time: decode mirrors encode, plus the gather of
    the rebuilt ``s`` bytes to the newly launched rank."""
    net = net_bw / procs_per_node
    return checkpoint_time(s, group_size, mem_bw, net_bw, procs_per_node) + s / net


def per_node_throughput(
    s_per_node: float, group_size: int, mem_bw: float, net_bw: float, restart: bool = False
) -> float:
    """Checkpoint (or restart) bytes/s per node -- Fig 12's y-axis,
    normalised per node.  Constant in the number of nodes."""
    fn = restart_time if restart else checkpoint_time
    t = fn(s_per_node, group_size, mem_bw, net_bw, procs_per_node=1)
    return s_per_node / t
