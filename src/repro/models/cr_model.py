"""Section V-B: the checkpoint/restart time model, per redundancy scheme.

For ``s`` bytes of checkpoint data per rank in a redundancy group of
``n``::

    XOR      T_ckpt    = s/mem_bw + (s + s/(n-1))/net_bw + s/mem_bw
             T_restart = T_ckpt   + s/net_bw              (the Gather stage)

    PARTNER  T_ckpt    = s/mem_bw + s/net_bw + s/mem_bw
             T_restart = s/mem_bw + 2s/net_bw + 2s/mem_bw

    SINGLE   T_ckpt    = s/mem_bw
             T_restart = s/mem_bw

XOR's three checkpoint terms are the memcpy snapshot, the
ring-pipelined parity transfer, and the XOR compute (memory-bound).
PARTNER replaces the parity ring with a plain neighbour copy: ``s``
bytes on the wire (instead of ``s + s/(n-1)``) and a second memcpy to
store the partner's copy; its restart serialises the helper's copy and
the feeder's re-protection blob through the replacement's single NIC
(hence ``2s/net_bw``) and stores both (``2s/mem_bw``) after the
survivors' parallel ``s/mem_bw`` loads.  SINGLE stores node-local only
-- no network at all -- and can restart only ranks whose node
survived.

Every model is independent of the *total* process count -- the paper's
scalability argument for Fig 12 -- but when several ranks share a node
their transfers share the NIC, so per-NODE quantities divide the node
bandwidths accordingly (``procs_per_node`` parameter).
"""

from __future__ import annotations

__all__ = [
    "checkpoint_time",
    "restart_time",
    "storage_overhead",
    "per_node_throughput",
    "SCHEMES",
]

#: scheme names understood by every function in this module
SCHEMES = ("xor", "partner", "single")


def _check(s: float, group_size: int, scheme: str) -> None:
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r} (choose from {SCHEMES})")
    if s < 0:
        raise ValueError("s must be >= 0")
    if scheme in ("xor", "partner") and group_size < 2:
        raise ValueError("group_size must be >= 2")


def checkpoint_time(
    s: float,
    group_size: int,
    mem_bw: float,
    net_bw: float,
    procs_per_node: int = 1,
    scheme: str = "xor",
) -> float:
    """Modelled level-1 checkpoint time for ``s`` bytes/rank.

    ``procs_per_node`` ranks share the node's memory bus and NIC, so
    effective per-rank bandwidths scale down by that factor (they all
    checkpoint simultaneously).
    """
    _check(s, group_size, scheme)
    mem = mem_bw / procs_per_node
    net = net_bw / procs_per_node
    if scheme == "single":
        return s / mem
    if scheme == "partner":
        return s / mem + s / net + s / mem
    transfer = s + s / (group_size - 1)
    return s / mem + transfer / net + s / mem


def restart_time(
    s: float,
    group_size: int,
    mem_bw: float,
    net_bw: float,
    procs_per_node: int = 1,
    scheme: str = "xor",
) -> float:
    """Modelled restart time of one replacement rank.

    XOR: decode mirrors encode, plus the gather of the rebuilt ``s``
    bytes to the newly launched rank.  PARTNER: the helper's copy and
    the feeder's re-protection blob share the replacement's NIC, then
    both are stored.  SINGLE: a local read-back (a lost member is
    beyond level-1 repair).
    """
    _check(s, group_size, scheme)
    mem = mem_bw / procs_per_node
    net = net_bw / procs_per_node
    if scheme == "single":
        return s / mem
    if scheme == "partner":
        return s / mem + 2 * s / net + 2 * s / mem
    return (
        checkpoint_time(s, group_size, mem_bw, net_bw, procs_per_node)
        + s / net
    )


def storage_overhead(scheme: str, group_size: int) -> float:
    """Redundancy bytes stored per checkpoint byte (on top of the
    snapshot itself)."""
    _check(0.0, group_size, scheme)
    if scheme == "single":
        return 0.0
    if scheme == "partner":
        return 1.0
    return 1.0 / (group_size - 1)


def per_node_throughput(
    s_per_node: float, group_size: int, mem_bw: float, net_bw: float,
    restart: bool = False, scheme: str = "xor",
) -> float:
    """Checkpoint (or restart) bytes/s per node -- Fig 12's y-axis,
    normalised per node.  Constant in the number of nodes."""
    fn = restart_time if restart else checkpoint_time
    t = fn(s_per_node, group_size, mem_bw, net_bw, procs_per_node=1,
           scheme=scheme)
    return s_per_node / t
