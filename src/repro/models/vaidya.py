"""Checkpoint-interval optimisation (Vaidya [13] family).

FMI auto-tunes its checkpoint interval from a user-supplied MTBF
(Section III-B).  We model a Poisson failure process with rate
``lambda = 1/MTBF``; with checkpoint cost ``C``, restart cost ``R`` and
useful-work segment length ``T``, the classic renewal analysis gives an
expected wall-time *factor* per unit of useful work of::

    F(T) = e^{lam R} * (e^{lam (T + C)} - 1) / (lam * T)

(:func:`expected_runtime_factor`).  :func:`optimal_interval` minimises
F numerically (golden-section), and agrees with the first-order
closed form ``sqrt(2 C M)`` when ``C << MTBF`` -- which the tests
check.  The same function serves the FMI runtime and the ablation
benchmark on interval choice.
"""

from __future__ import annotations

import math

__all__ = ["expected_runtime_factor", "optimal_interval", "young_interval"]


def _check_finite(**params: float) -> None:
    """Reject NaN/inf model inputs with the offending name."""
    for name, value in params.items():
        if not math.isfinite(value):
            raise ValueError(f"{name} must be finite, got {value!r}")


def expected_runtime_factor(
    interval: float, ckpt_cost: float, mtbf: float, restart_cost: float = 0.0
) -> float:
    """Expected wall seconds per useful second at this interval."""
    _check_finite(interval=interval, ckpt_cost=ckpt_cost, mtbf=mtbf,
                  restart_cost=restart_cost)
    if interval <= 0:
        raise ValueError("interval must be positive")
    if mtbf <= 0:
        raise ValueError("mtbf must be positive")
    if ckpt_cost < 0:
        raise ValueError("ckpt_cost must be >= 0")
    if restart_cost < 0:
        raise ValueError("restart_cost must be >= 0")
    lam = 1.0 / mtbf
    x = lam * (interval + ckpt_cost)
    # Guard against overflow in pathological corners of optimisation.
    if x > 700:
        return math.inf
    # expm1 keeps the near-failure-free limit exact: for x below float
    # epsilon, exp(x) - 1.0 rounds to 0 and the factor collapses to 0
    # instead of its true limit (interval + ckpt_cost) / interval >= 1.
    return math.exp(lam * restart_cost) * math.expm1(x) / (lam * interval)


def young_interval(ckpt_cost: float, mtbf: float) -> float:
    """First-order closed form: sqrt(2 * C * MTBF)."""
    _check_finite(ckpt_cost=ckpt_cost, mtbf=mtbf)
    if ckpt_cost < 0 or mtbf <= 0:
        raise ValueError("need ckpt_cost >= 0 and mtbf > 0")
    return math.sqrt(2.0 * ckpt_cost * mtbf)


def optimal_interval(
    ckpt_cost: float, mtbf: float, restart_cost: float = 0.0
) -> float:
    """Numerically optimal useful-work segment length between
    checkpoints (seconds)."""
    _check_finite(ckpt_cost=ckpt_cost, mtbf=mtbf, restart_cost=restart_cost)
    if ckpt_cost < 0:
        raise ValueError("ckpt_cost must be >= 0")
    if mtbf <= 0:
        raise ValueError("mtbf must be positive")
    if restart_cost < 0:
        raise ValueError("restart_cost must be >= 0")
    if ckpt_cost == 0:
        # Free checkpoints: checkpoint as often as possible; callers
        # clamp to one application iteration.
        return 0.0
    # Golden-section search on a bracket around the Young estimate.
    lo = max(1e-9, 0.01 * young_interval(ckpt_cost, mtbf))
    hi = max(100.0 * young_interval(ckpt_cost, mtbf), 10.0 * ckpt_cost)
    phi = (math.sqrt(5.0) - 1.0) / 2.0

    def f(t: float) -> float:
        return expected_runtime_factor(t, ckpt_cost, mtbf, restart_cost)

    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc, fd = f(c), f(d)
    for _ in range(200):
        if b - a < 1e-9 * max(1.0, b):
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = f(c)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = f(d)
    return 0.5 * (a + b)
