"""Fig 16: probability of a continuous 24-hour run.

Assuming Poisson failures, ``P(run T seconds) = exp(-lambda * T)``
where ``lambda`` is the rate of failures the execution cannot survive:

* without FMI, every failure is fatal: ``lambda = L1 + L2``;
* with FMI (level-1 XOR C/R), only level-2 failures -- those XOR
  cannot repair -- terminate the run: ``lambda = L2``.

The paper scales the observed Coastal rates (L1 MTBF 130 h, L2 MTBF
650 h) by a factor of 1..50 to project larger machines.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.cluster.spec import COASTAL_L1_RATE, COASTAL_L2_RATE

__all__ = ["prob_continuous_run", "run_probability_curve"]

DAY_SECONDS = 24 * 3600.0


def prob_continuous_run(rate_per_second: float, duration: float = DAY_SECONDS) -> float:
    """``exp(-lambda T)`` for a Poisson fatal-failure process."""
    if rate_per_second < 0 or duration < 0:
        raise ValueError("rate and duration must be non-negative")
    return math.exp(-rate_per_second * duration)


def run_probability_curve(
    scale_factors: Sequence[float],
    l1_rate: float = COASTAL_L1_RATE,
    l2_rate: float = COASTAL_L2_RATE,
    duration: float = DAY_SECONDS,
) -> List[Tuple[float, float, float]]:
    """Rows of ``(scale, P(with FMI), P(without FMI))`` -- Fig 16's
    two curves."""
    rows = []
    for f in scale_factors:
        if f < 0:
            raise ValueError("scale factors must be non-negative")
        with_fmi = prob_continuous_run(f * l2_rate, duration)
        without = prob_continuous_run(f * (l1_rate + l2_rate), duration)
        rows.append((f, with_fmi, without))
    return rows
