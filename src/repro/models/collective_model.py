"""Closed-form completion-time model for the collective algorithms.

The macro-event fast path (:mod:`repro.mpi.macro`) replaces every hop
of a collective with **one** kernel event; this module prices that
event.  Each function replays the hop algorithm's message schedule on
virtual per-rank clocks, charging the same closed-form per-message
costs the fabric would charge an uncontended transfer:

* inter-node: ``t(b) = 2*o + L + b/B``   (head overhead, send, wire
  latency + tail overhead -- exactly :meth:`Fabric.transfer_time`)
* intra-node: ``m(b) = 2*o + b/M``       (the memory-bus path)

where ``o`` is the per-side software overhead, ``L`` the wire latency,
``B`` the NIC bandwidth and ``M`` the memory-bus bandwidth from the
cluster spec.  Because ``yield comm.send_async(...)`` blocks until
delivery, a sender's messages serialize; the virtual clocks reproduce
that, so for the regular shapes the totals collapse to the familiar
closed forms (uniform payload ``b``, power-of-two ``p``, one rank per
node):

=================  ==========================================
``bcast``          ``ceil(log2 p) * t(b)``
``reduce``         ``log2 p * t(b)``
``allreduce``      ``(log2 p + 2*[p not pof2]) * t(b)``
``barrier``        ``ceil(log2 p) * t(4)``
``gather``         ``R(p) = max_k R(s_k) + t(b*s_k)`` recurrence
``allgather``      ``(p-1) * t(b)``
``scatter``        ``sum over dst != root of t(b_dst)`` (serialized)
``alltoall``       ``(p-1) * t(b)``
``allreduce_hier`` ``[2o+(P-1)b/M] + T_ar(p/P) + (P-1)*m(b)``
=================  ==========================================

The model deliberately ignores *intra-collective* NIC/memory-bus
contention between concurrent flows of the same round (except in the
hierarchical fan-in, where it is structural): the fast path is only
eligible when the network is otherwise idle, and for the
latency-dominated messages our collectives carry the bandwidth error
is far below the conformance tolerance.  Per-message flow sharing is
what the hop-level oracle still prices exactly.

Every function takes ``nodes`` -- the node id of each communicator
rank, in rank order -- so mixed intra-/inter-node shapes (e.g. twelve
ranks per node) price each edge with the right formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["NetParams", "collective_time"]


@dataclass(frozen=True)
class NetParams:
    """The four calibrated constants the per-message costs need."""

    sw_overhead: float
    wire_latency: float
    link_bw: float
    mem_bw: float

    @classmethod
    def from_transport(cls, transport) -> "NetParams":
        spec = transport.machine.spec
        return cls(
            sw_overhead=transport.sw_overhead,
            wire_latency=spec.network.wire_latency,
            link_bw=spec.network.link_bw,
            mem_bw=spec.node.memory_bw,
        )

    def p2p(self, nbytes: float) -> float:
        """Uncontended inter-node transfer (Fabric.transfer_time)."""
        return (
            2.0 * self.sw_overhead
            + self.wire_latency
            + nbytes / self.link_bw
        )

    def shm(self, nbytes: float) -> float:
        """Uncontended intra-node (memory-bus) transfer."""
        return 2.0 * self.sw_overhead + nbytes / self.mem_bw

    def cost(self, src_node: int, dst_node: int, nbytes: float) -> float:
        if src_node == dst_node:
            return self.shm(nbytes)
        return self.p2p(nbytes)


def collective_time(
    kind: str,
    nodes: Sequence[int],
    sizes,
    net: NetParams,
    root: int = 0,
    procs_per_node: int = 1,
) -> float:
    """Completion time (seconds from synchronized entry) of one
    collective over ranks placed at ``nodes``.

    ``sizes`` is the per-message byte count input, shaped per kind:
    a scalar for the uniform collectives (``bcast`` uses the root's
    payload size, the others the per-rank size), a per-rank sequence
    for ``reduce``/``allreduce``/``gather``/``scatter``, and a
    per-rank-per-destination matrix for ``alltoall``.
    """
    if kind == "allreduce_hier":
        return allreduce_hier_time(nodes, sizes, net, procs_per_node)
    if kind in ("bcast", "reduce", "gather", "scatter"):
        return _KINDS[kind](nodes, sizes, net, root)
    return _KINDS[kind](nodes, sizes, net)


def _per_rank(sizes, size: int) -> List[float]:
    if isinstance(sizes, (int, float)):
        return [float(sizes)] * size
    return [float(s) for s in sizes]


def bcast_time(nodes: Sequence[int], nbytes: float, net: NetParams,
               root: int = 0) -> float:
    """Binomial tree; the root (and every forwarder) serializes its
    sends largest-subtree first."""
    size = len(nodes)
    if size <= 1:
        return 0.0
    node_of = lambda rel: nodes[(rel + root) % size]  # noqa: E731
    top = 1
    while top < size:
        top <<= 1
    done = 0.0
    # (relative rank, receive mask upper bound, arrival time)
    stack = [(0, top, 0.0)]
    while stack:
        rel, recv_mask, t = stack.pop()
        clock = t
        mask = recv_mask >> 1
        while mask >= 1:
            child = rel + mask
            if child < size:
                clock += net.cost(node_of(rel), node_of(child), nbytes)
                if clock > done:
                    done = clock
                stack.append((child, mask, clock))
            mask >>= 1
    return done


def reduce_time(nodes: Sequence[int], sizes, net: NetParams,
                root: int = 0) -> float:
    """Binomial tree fan-in; a rank sends its accumulator once all its
    own fold-ins arrived, so cost is the critical path, not the round
    sum (non-power-of-two trees overlap rounds)."""
    size = len(nodes)
    per = _per_rank(sizes, size)
    if size <= 1:
        return 0.0
    node_of = lambda rel: nodes[(rel + root) % size]  # noqa: E731
    b_of = lambda rel: per[(rel + root) % size]  # noqa: E731
    done = [0.0] * size
    mask = 1
    while mask < size:
        for rel in range(0, size - mask, mask << 1):
            sender = rel + mask
            c = net.cost(node_of(sender), node_of(rel), b_of(sender))
            arrived = done[sender] + c
            done[sender] = arrived  # send_async blocks until delivery
            if arrived > done[rel]:
                done[rel] = arrived
        mask <<= 1
    return max(done)


def allreduce_time(nodes: Sequence[int], sizes, net: NetParams) -> float:
    """Recursive doubling with the pairwise pre/post fold for
    non-power-of-two sizes."""
    size = len(nodes)
    per = _per_rank(sizes, size)
    if size <= 1:
        return 0.0
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    done = [0.0] * size
    for r in range(0, 2 * rem, 2):
        c = net.cost(nodes[r], nodes[r + 1], per[r])
        done[r] += c
        if done[r] > done[r + 1]:
            done[r + 1] = done[r]

    def realrank(nr: int) -> int:
        return nr * 2 + 1 if nr < rem else nr + rem

    mask = 1
    while mask < pof2:
        ranks = [realrank(nr) for nr in range(pof2)]
        prev = [done[r] for r in ranks]
        for nr in range(pof2):
            a = ranks[nr]
            p = ranks[nr ^ mask]
            out = prev[nr] + net.cost(nodes[a], nodes[p], per[a])
            back = prev[nr ^ mask] + net.cost(nodes[p], nodes[a], per[p])
            done[a] = out if out > back else back
        mask <<= 1
    for r in range(0, 2 * rem, 2):
        c = net.cost(nodes[r + 1], nodes[r], per[r + 1])
        done[r + 1] += c
        if done[r + 1] > done[r]:
            done[r] = done[r + 1]
    return max(done)


def barrier_time(nodes: Sequence[int], nbytes: float, net: NetParams) -> float:
    """Dissemination: every round each rank sendrecvs distance ``mask``."""
    size = len(nodes)
    if size <= 1:
        return 0.0
    done = [0.0] * size
    mask = 1
    while mask < size:
        prev = list(done)
        for r in range(size):
            dst = (r + mask) % size
            src = (r - mask) % size
            out = prev[r] + net.cost(nodes[r], nodes[dst], nbytes)
            inc = prev[src] + net.cost(nodes[src], nodes[r], nbytes)
            done[r] = out if out > inc else inc
        mask <<= 1
    return max(done)


def gather_time(nodes: Sequence[int], sizes, net: NetParams,
                root: int = 0) -> float:
    """Binomial fan-in like reduce, but message bytes grow with the
    sender's accumulated subtree (``b * subtree_size``)."""
    size = len(nodes)
    per = _per_rank(sizes, size)
    if size <= 1:
        return 0.0
    node_of = lambda rel: nodes[(rel + root) % size]  # noqa: E731
    done = [0.0] * size
    mask = 1
    while mask < size:
        for rel in range(0, size - mask, mask << 1):
            sender = rel + mask
            count = min(mask, size - sender)
            b = per[(sender + root) % size] * count
            c = net.cost(node_of(sender), node_of(rel), b)
            arrived = done[sender] + c
            done[sender] = arrived
            if arrived > done[rel]:
                done[rel] = arrived
        mask <<= 1
    return max(done)


def allgather_time(nodes: Sequence[int], sizes, net: NetParams) -> float:
    """Ring: p-1 simultaneous-shift steps.  Every block a rank forwards
    is priced at that rank's *own* byte count (the hop algorithm fixes
    ``nbytes`` once per rank), so ``sizes`` may be per-rank."""
    size = len(nodes)
    per = _per_rank(sizes, size)
    if size <= 1:
        return 0.0
    done = [0.0] * size
    for _step in range(size - 1):
        prev = list(done)
        for r in range(size):
            right = (r + 1) % size
            left = (r - 1) % size
            out = prev[r] + net.cost(nodes[r], nodes[right], per[r])
            inc = prev[left] + net.cost(nodes[left], nodes[r], per[left])
            done[r] = out if out > inc else inc
    return max(done)


def scatter_time(nodes: Sequence[int], sizes, net: NetParams,
                 root: int = 0) -> float:
    """Linear from root; the root's sends serialize."""
    size = len(nodes)
    per = _per_rank(sizes, size)
    clock = 0.0
    for dst in range(size):
        if dst == root:
            continue
        clock += net.cost(nodes[root], nodes[dst], per[dst])
    return clock


def alltoall_time(nodes: Sequence[int], sizes, net: NetParams) -> float:
    """Ring-schedule pairwise exchange; ``sizes`` may be a scalar
    (uniform) or a per-rank-per-destination matrix."""
    size = len(nodes)
    if size <= 1:
        return 0.0
    uniform = isinstance(sizes, (int, float))
    b_of = (
        (lambda src, dst: float(sizes))
        if uniform
        else (lambda src, dst: float(sizes[src][dst]))
    )
    done = [0.0] * size
    for step in range(1, size):
        prev = list(done)
        for r in range(size):
            dst = (r + step) % size
            src = (r - step) % size
            out = prev[r] + net.cost(nodes[r], nodes[dst], b_of(r, dst))
            inc = prev[src] + net.cost(nodes[src], nodes[r], b_of(src, r))
            done[r] = out if out > inc else inc
    return max(done)


def allreduce_hier_time(nodes: Sequence[int], sizes, net: NetParams,
                        procs_per_node: int) -> float:
    """Shared-memory fan-in to per-node leaders, recursive doubling
    among leaders, serialized fan-out.  The fan-in's (P-1) concurrent
    flows share the leader's medium -- that contention is structural,
    so it is priced."""
    size = len(nodes)
    per = _per_rank(sizes, size)
    P = max(1, procs_per_node)
    if P == 1 or size <= P:
        return allreduce_time(nodes, per, net)
    leaders = list(range(0, size, P))
    up = 0.0
    down = 0.0
    for lead in leaders:
        locals_ = list(range(lead + 1, lead + P))
        n_shm = sum(1 for r in locals_ if nodes[r] == nodes[lead])
        n_net = len(locals_) - n_shm
        for r in locals_:
            if nodes[r] == nodes[lead]:
                t = 2.0 * net.sw_overhead + n_shm * per[r] / net.mem_bw
            else:
                t = (
                    2.0 * net.sw_overhead
                    + net.wire_latency
                    + n_net * per[r] / net.link_bw
                )
            if t > up:
                up = t
        clock = 0.0
        for r in locals_:
            clock += net.cost(nodes[lead], nodes[r], per[lead])
        if clock > down:
            down = clock
    mid = allreduce_time(
        [nodes[lead] for lead in leaders],
        [per[lead] for lead in leaders],
        net,
    )
    return up + mid + down


_KINDS = {
    "bcast": bcast_time,
    "reduce": reduce_time,
    "allreduce": allreduce_time,
    "barrier": barrier_time,
    "gather": gather_time,
    "allgather": allgather_time,
    "scatter": scatter_time,
    "alltoall": alltoall_time,
    "allreduce_hier": allreduce_hier_time,
}
