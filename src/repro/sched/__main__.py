"""The service-mode soak driver.

Sweeps seeds over a Poisson job stream on one shared cluster, reports
per-tenant and aggregate statistics, and checks the service-mode
invariants after every run::

    python -m repro.sched --seeds 5 --jobs 16 --rate 0.5 --mtbf 200
    python -m repro.sched --seed-list 3,7 --mix global,logged --verbose
    python -m repro.sched --preempt --spare-pool 2

Checked invariants: every tenant's answer is bitwise identical to its
solo failure-free run, no node is double-booked across tenants, and
every node comes back to the idle pool when the stream drains
(conservation).  Exit status is non-zero on any violation, so the CI
sched-soak job fails loudly.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster import Machine
from repro.cluster.failures import MtbfInjector
from repro.cluster.spec import SIERRA
from repro.sched.scheduler import SchedSummary, StreamScheduler
from repro.sched.spec import JobSpec, poisson_arrivals
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

MAX_EVENTS = 5_000_000

#: the canned per-family tenant shapes the soak cycles through
FAMILY_SPECS = {
    "failstop": JobSpec(name="fs", ranks=4, ppn=2, recovery="failstop",
                        iterations=8, work_s=0.2),
    "global": JobSpec(name="glb", ranks=4, ppn=2, recovery="global",
                      spares=1, interval=2, iterations=8, work_s=0.2),
    "logged": JobSpec(name="log", ranks=4, ppn=2, recovery="logged",
                      spares=1, interval=2, iterations=8, work_s=0.2),
    "replicated": JobSpec(name="rep", ranks=4, ppn=2, recovery="replicated",
                          spares=1, replication_degree=2, interval=2,
                          iterations=8, work_s=0.2),
}


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.sched",
        description="multi-tenant job-stream soak for the shared cluster",
    )
    parser.add_argument("--seeds", type=int, default=5,
                        help="sweep seeds 0..N-1 (default: 5)")
    parser.add_argument("--seed-list", default=None,
                        help="explicit comma-separated seeds (overrides --seeds)")
    parser.add_argument("--nodes", type=int, default=16,
                        help="cluster size (default: 16)")
    parser.add_argument("--jobs", type=int, default=12,
                        help="jobs per stream (default: 12)")
    parser.add_argument("--rate", type=float, default=0.5,
                        help="Poisson arrival rate, jobs/s (default: 0.5)")
    parser.add_argument(
        "--mix", default="global,logged,replicated,failstop",
        help="comma-separated recovery families to cycle through",
    )
    parser.add_argument("--mtbf", type=float, default=0.0,
                        help="machine MTBF in seconds; 0 = no failures")
    parser.add_argument("--spare-pool", type=int, default=2,
                        help="shared warm-spare pool size (default: 2)")
    parser.add_argument("--no-backfill", action="store_true",
                        help="plain FCFS (disable EASY backfill)")
    parser.add_argument("--preempt", action="store_true",
                        help="enable the preempt-low-priority policy")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print the per-tenant table for every seed")
    return parser.parse_args(argv)


def check_invariants(machine, scheduler, summary: SchedSummary) -> List[str]:
    """The service-mode oracle; returns violation strings."""
    violations: List[str] = []
    # 1. answers: bitwise-equal to the solo failure-free recurrence
    for rec in summary.records:
        if rec.state != "done":
            continue
        want = rec.spec.expected_results()
        got = rec.result
        for r, (g, w) in enumerate(zip(got, want)):
            if not (isinstance(g, np.ndarray) and np.array_equal(g, w)):
                violations.append(
                    f"{rec.job_id}: rank {r} answer diverged from solo run"
                )
                break
    # 2. no double-booking across tenants (per-attempt occupancy)
    busy: dict = {}
    for rec in summary.records:
        for start, end, nodes in rec.attempts:
            for nid in nodes:
                busy.setdefault(nid, []).append((start, end, rec.job_id))
    for nid, spans in busy.items():
        spans.sort()
        for (s0, e0, j0), (s1, e1, j1) in zip(spans, spans[1:]):
            if j0 != j1 and s1 < e0:
                violations.append(
                    f"node {nid} double-booked: {j0} [{s0:.3f},{e0:.3f}) "
                    f"overlaps {j1} [{s1:.3f},{e1:.3f})"
                )
    # 3. conservation: once drained, every live node is idle again
    scheduler.shutdown()
    live = len(machine.live_nodes)
    idle = machine.rm.idle_count
    if idle != live:
        violations.append(
            f"conservation: {live} live nodes but only {idle} idle after drain"
        )
    return violations


def run_soak(seed: int, args) -> Tuple[SchedSummary, List[str], float]:
    families = [f.strip() for f in args.mix.split(",") if f.strip()]
    for f in families:
        if f not in FAMILY_SPECS:
            raise SystemExit(
                f"unknown family {f!r} (choose from {sorted(FAMILY_SPECS)})"
            )
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(args.nodes), RngRegistry(seed))
    scheduler = StreamScheduler(
        machine,
        backfill=not args.no_backfill,
        preempt=args.preempt,
        spare_pool=args.spare_pool,
    )
    specs = [FAMILY_SPECS[f] for f in families]
    arrivals = poisson_arrivals(
        specs, args.rate, args.jobs, machine.rng.stream("sched.arrivals")
    )
    scheduler.submit_many(arrivals)
    if args.mtbf > 0:
        MtbfInjector(
            sim, machine.rng.stream("sched.mtbf"), args.mtbf,
            kill=lambda nid: machine.fail_nodes([nid], cause="mtbf"),
            num_nodes=args.nodes,
        ).start()
    drained = scheduler.drain()
    sim.run(until=drained, max_events=MAX_EVENTS)
    violations: List[str] = []
    if not drained.triggered:
        violations.append(
            f"stream did not drain within {MAX_EVENTS} events "
            f"(t={sim.now:.1f}s)"
        )
        summary = scheduler.summary()
    else:
        summary = drained.value
        violations.extend(check_invariants(machine, scheduler, summary))
    return summary, violations, sim.now


def _tenant_table(summary: SchedSummary) -> str:
    lines = [
        f"    {'tenant':<10} {'family':<10} {'state':<9} "
        f"{'wait_s':>7} {'svc_s':>7} {'rst':>3}"
    ]
    for rec in summary.records:
        wait = f"{rec.wait_s:.2f}" if rec.wait_s is not None else "-"
        svc = f"{rec.service_s:.2f}" if rec.service_s is not None else "-"
        lines.append(
            f"    {rec.job_id:<10} {rec.spec.recovery:<10} {rec.state:<9} "
            f"{wait:>7} {svc:>7} {rec.restarts:>3}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    if args.seed_list:
        seeds = [int(s) for s in args.seed_list.split(",") if s.strip()]
    else:
        seeds = list(range(args.seeds))
    failures = 0
    t0 = time.time()
    for seed in seeds:
        summary, violations, sim_t = run_soak(seed, args)
        status = "ok " if not violations else "FAIL"
        print(
            f"[{status}] seed={seed} jobs={summary.jobs} "
            f"done={summary.completed} failed={summary.failed} "
            f"restarts={summary.restarts} preempts={summary.preemptions} "
            f"p50_wait={summary.p50_wait:.2f}s p99_wait={summary.p99_wait:.2f}s "
            f"goodput={summary.goodput:.3f} makespan={summary.makespan:.1f}s "
            f"sim_t={sim_t:.1f}s"
        )
        if args.verbose or violations:
            print(_tenant_table(summary))
        for v in violations:
            print(f"       VIOLATION {v}")
        failures += bool(violations)
    wall = time.time() - t0
    print(
        f"soak: {len(seeds) - failures}/{len(seeds)} seeds clean "
        f"in {wall:.1f}s wall"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
