"""repro.sched -- the multi-tenant job-stream scheduler (service mode).

The paper's operational pitch priced on the thing operators actually
face: many concurrent FMI/MPI jobs sharing one cluster.  A
:class:`~repro.sched.scheduler.StreamScheduler` admits a trace- or
distribution-driven stream of :class:`~repro.sched.spec.JobSpec`\\ s
with FCFS + EASY backfill (and optional low-priority preemption),
grants each tenant an externally owned allocation, shares a warm
:class:`~repro.cluster.resource_manager.SparePool` across tenants, and
labels every metric/trace record with the tenant's ``job_id``.

Soak it from the command line::

    python -m repro.sched --seeds 5 --jobs 16 --rate 0.5 --mtbf 200

and price operating points analytically with
:mod:`repro.models.queueing` (see ``benchmarks/bench_sched_capacity``).
"""

from repro.sched.scheduler import SchedSummary, StreamScheduler, TenantRecord
from repro.sched.spec import (
    Arrival,
    JobSpec,
    RECOVERY_FAMILIES,
    poisson_arrivals,
    trace_arrivals,
)

__all__ = [
    "Arrival",
    "JobSpec",
    "RECOVERY_FAMILIES",
    "SchedSummary",
    "StreamScheduler",
    "TenantRecord",
    "poisson_arrivals",
    "trace_arrivals",
]
