"""Job descriptions and arrival processes for the stream scheduler.

A :class:`JobSpec` is everything the scheduler needs to admit, place,
and price one tenant: geometry (ranks, processes per node, reserved
spares), the recovery family (``failstop`` relaunches through the
queue; ``global``/``logged``/``replicated`` are the FMI planes), the
checkpoint interval, the synthetic workload parameters, and the
runtime estimate backfill reasons about.

Arrivals are either *trace-driven* (explicit ``(time, spec)`` pairs,
e.g. replayed from a production log) or *distribution-driven*
(:func:`poisson_arrivals` over a spec mix).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.apps.synthetic import bsp_app, expected_bsp_state
from repro.fmi.config import FmiConfig

__all__ = ["RECOVERY_FAMILIES", "JobSpec", "Arrival", "poisson_arrivals"]

#: admissible recovery families: MPI's relaunch-through-the-queue
#: contract plus the three FMI recovery planes
RECOVERY_FAMILIES = ("failstop", "global", "logged", "replicated")


@dataclass
class JobSpec:
    """One tenant's job description (the scheduler's admission unit)."""

    name: str = "job"
    ranks: int = 4
    ppn: int = 1
    #: pre-reserved spare nodes allocated with the job (FMI families)
    spares: int = 0
    recovery: str = "global"
    replication_degree: int = 2
    #: checkpoint every k-th FMI_Loop call (FMI families)
    interval: Optional[int] = 1
    iterations: int = 10
    work_s: float = 0.1
    halo_bytes: float = 1e4
    #: preemption rank (higher may evict lower under the preempt policy)
    priority: int = 0
    #: user-supplied runtime estimate for backfill; None = derived
    est_runtime: Optional[float] = None
    #: fail-stop relaunch budget before the job is marked failed
    max_restarts: int = 4
    #: extra FmiConfig knobs (e.g. replacement_timeout, redundancy)
    config_extra: Dict[str, Any] = field(default_factory=dict)
    #: custom application factory ``spec -> app`` (default: bsp_app)
    app_factory: Optional[Callable[["JobSpec"], Any]] = None

    def __post_init__(self) -> None:
        if self.ranks < 1 or self.ppn < 1:
            raise ValueError("ranks and ppn must be >= 1")
        if self.ranks % self.ppn != 0:
            raise ValueError("ranks must be a multiple of ppn")
        if self.recovery not in RECOVERY_FAMILIES:
            raise ValueError(
                f"unknown recovery family {self.recovery!r} "
                f"(choose from {RECOVERY_FAMILIES})"
            )
        if self.spares < 0:
            raise ValueError("spares must be >= 0")
        if self.recovery == "failstop" and self.spares:
            raise ValueError("failstop jobs take no spares (they requeue)")
        if (self.recovery == "replicated"
                and self.spares < self.replication_degree - 1):
            raise ValueError(
                "replicated jobs need spares >= replication_degree - 1"
            )
        if self.iterations < 1 or self.work_s <= 0:
            raise ValueError("iterations >= 1 and work_s > 0 required")

    # -- geometry -----------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.ranks // self.ppn

    @property
    def num_copies(self) -> int:
        return self.replication_degree if self.recovery == "replicated" else 1

    @property
    def total_nodes(self) -> int:
        """Admission footprint: compute nodes x copies + reserved spares."""
        return self.num_nodes * self.num_copies + self.spares

    # -- runtime ------------------------------------------------------------
    @property
    def ideal_runtime(self) -> float:
        """Pure compute seconds (the goodput numerator)."""
        return self.iterations * self.work_s

    @property
    def estimated_runtime(self) -> float:
        """The backfill estimate.  Deliberately generous (EASY relies on
        estimates being over-, not under-shoots): twice the compute time
        plus a constant boot/init allowance."""
        if self.est_runtime is not None:
            return self.est_runtime
        return 2.0 * self.ideal_runtime + 2.0

    # -- factories ----------------------------------------------------------
    def make_app(self):
        if self.app_factory is not None:
            return self.app_factory(self)
        return bsp_app(self.iterations, self.work_s, self.halo_bytes)

    def make_config(self) -> Optional[FmiConfig]:
        """The FmiConfig for this tenant; None for fail-stop jobs."""
        if self.recovery == "failstop":
            return None
        return FmiConfig(
            interval=self.interval,
            recovery=self.recovery,
            replication_degree=self.replication_degree,
            spare_nodes=self.spares,
            **self.config_extra,
        )

    def expected_results(self) -> List[Any]:
        """Per-rank answers of the default workload (solo, failure-free
        -- also what any run *through* failures must reproduce bitwise)."""
        if self.app_factory is not None:
            raise ValueError("expected_results only known for the default app")
        return [
            expected_bsp_state(r, self.ranks, self.iterations)
            for r in range(self.ranks)
        ]

    def with_(self, **changes) -> "JobSpec":
        return replace(self, **changes)


@dataclass(frozen=True)
class Arrival:
    """One submission in a job stream."""

    at: float
    spec: JobSpec


def poisson_arrivals(
    specs: Sequence[JobSpec],
    rate: float,
    count: int,
    rng,
    start: float = 0.0,
) -> List[Arrival]:
    """A Poisson job stream: exponential inter-arrival gaps at ``rate``
    jobs/second, cycling through the spec mix.  ``rng`` is a seeded
    ``numpy.random.Generator`` (the machine's ``"sched"`` stream), so
    the same seed yields the same stream -- arrivals are part of the
    deterministic replay surface."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if not specs:
        raise ValueError("need at least one spec")
    arrivals: List[Arrival] = []
    t = start
    for i in range(count):
        t += float(rng.exponential(1.0 / rate))
        arrivals.append(Arrival(at=t, spec=specs[i % len(specs)]))
    return arrivals


def trace_arrivals(pairs: Iterable) -> List[Arrival]:
    """Normalise ``(time, spec)`` pairs into a sorted arrival list."""
    arrivals = [Arrival(at=float(t), spec=s) for t, s in pairs]
    arrivals.sort(key=lambda a: a.at)
    return arrivals
