"""The elastic job-stream scheduler (service mode).

One :class:`StreamScheduler` owns the admission queue of a shared
cluster: tenants submit :class:`~repro.sched.spec.JobSpec`\\ s, the
scheduler grants allocations out of the machine's resource manager and
launches each job against its grant (``FmiJob``/``MpiJob`` with an
externally owned allocation -- the jobs no longer assume they have the
cluster to themselves).

Policies:

* **FCFS** head-of-queue admission, deterministic: priority classes
  first, submission order within a class.
* **EASY backfill** (default on): while the head job waits for nodes, a
  later job may jump ahead iff it fits *now* and -- by the runtime
  estimates -- cannot delay the head's reservation (finishes before the
  head's shadow time, or uses only nodes the head's reservation leaves
  over).  The head is never starved: its reservation is computed before
  any backfill candidate is considered.
* **Preempt-low-priority** (opt-in): a queued job with strictly higher
  priority may evict the lowest-priority running jobs; victims requeue
  at their original position *within their priority class* (i.e.
  behind all higher-priority work) and restart from scratch.

Failure handling is per recovery family: FMI tenants (``global`` /
``logged`` / ``replicated``) recover in place -- drawing replacement
nodes from their reserved spares, then the shared :class:`SparePool`,
then on-demand RM grants via ``Allocation.grow()`` -- while
``failstop`` tenants abort and are requeued (the classic
relaunch-through-the-batch-queue loop) up to ``max_restarts`` times.

Everything is deterministic given the machine's seeded RNG streams:
the same submission stream replays to the same schedule, byte for
byte, which the e2e suite asserts on the whole trace.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.cluster.machine import Machine
from repro.cluster.resource_manager import Allocation, SparePool
from repro.mpi.runtime import MpiJob
from repro.runtime.core import JobAborted
from repro.sched.spec import Arrival, JobSpec
from repro.simt.kernel import Event

__all__ = ["StreamScheduler", "TenantRecord", "SchedSummary"]

# terminal states: the record will never run again
_TERMINAL = ("done", "failed", "rejected")


class TenantRecord:
    """One submitted job's life in the queue (the scheduler's ledger)."""

    def __init__(self, scheduler: "StreamScheduler", spec: JobSpec, seq: int):
        self.scheduler = scheduler
        self.spec = spec
        #: FIFO position; requeues keep it, so fairness is by submission
        self.seq = seq
        self.job_id = f"{spec.name}#{seq}"
        self.state = "pending"  # pending -> queued -> running -> ...
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.job = None
        self.alloc: Optional[Allocation] = None
        #: node ids granted at the (latest) start
        self.nodes: List[int] = []
        self.restarts = 0
        self.preemptions = 0
        self.result = None
        self.failure: Optional[BaseException] = None
        #: idle nodes the moment this job started (property-test teeth:
        #: a backfilled start implies the then-head could not fit)
        self.idle_before_start: Optional[int] = None
        self.backfilled = False
        #: the then-head's footprint when this job backfilled past it
        self.head_need_at_start: Optional[int] = None
        #: node-seconds actually occupied, summed over every attempt
        self.busy_node_s = 0.0
        #: per-attempt occupancy: (started_at, finished_at, node ids) --
        #: the no-double-booking invariant is checked against these
        self.attempts: List[tuple] = []

    @property
    def wait_s(self) -> Optional[float]:
        """Queue wait of the first start (the sched.wait_s metric)."""
        if self.started_at is None or self.submitted_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def service_s(self) -> Optional[float]:
        if self.finished_at is None or self.started_at is None:
            return None
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TenantRecord {self.job_id} {self.state}>"


class SchedSummary:
    """Aggregate + per-tenant accounting of one scheduler run."""

    def __init__(self, scheduler: "StreamScheduler"):
        records = scheduler.records
        self.records = records
        self.jobs = len(records)
        self.completed = sum(1 for r in records if r.state == "done")
        self.failed = sum(1 for r in records if r.state in ("failed", "rejected"))
        self.restarts = sum(r.restarts for r in records)
        self.preemptions = sum(r.preemptions for r in records)
        waits = sorted(r.wait_s for r in records if r.wait_s is not None)
        self.mean_wait = sum(waits) / len(waits) if waits else 0.0
        self.p50_wait = _percentile(waits, 0.50)
        self.p99_wait = _percentile(waits, 0.99)
        starts = [r.submitted_at for r in records if r.submitted_at is not None]
        ends = [r.finished_at for r in records if r.finished_at is not None]
        self.makespan = (max(ends) - min(starts)) if starts and ends else 0.0
        useful = sum(
            r.spec.ideal_runtime * r.spec.num_nodes
            for r in records if r.state == "done"
        )
        busy = sum(r.busy_node_s for r in records)
        #: useful compute node-seconds per occupied node-second --
        #: failures and restarts burn occupancy without useful work, so
        #: this is the number that degrades with the failure rate
        self.goodput = useful / busy if busy > 0 else 0.0
        total = scheduler.machine.spec.num_nodes * self.makespan
        self.utilization = busy / total if total > 0 else 0.0


def _percentile(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(math.ceil(q * len(sorted_vals))) - 1)
    return sorted_vals[max(idx, 0)]


class StreamScheduler:
    """Admit a stream of FMI/MPI jobs onto one shared machine."""

    def __init__(
        self,
        machine: Machine,
        backfill: bool = True,
        preempt: bool = False,
        spare_pool: int = 0,
        name: str = "sched",
    ):
        self.machine = machine
        self.sim = machine.sim
        self.rm = machine.rm
        self.backfill = backfill
        self.preempt = preempt
        self.name = name
        #: shared warm-spare reserve every tenant's grow() draws on
        self.pool: Optional[SparePool] = (
            SparePool(machine.rm, spare_pool) if spare_pool > 0 else None
        )
        self._pool_target = spare_pool
        self.queue: List[TenantRecord] = []
        self.running: Dict[str, TenantRecord] = {}
        self.records: List[TenantRecord] = []
        self._seq = 0
        self._open = 0  # records not yet in a terminal state
        self._pending_arrivals = 0
        self._drained: Optional[Event] = None
        self._pumping = False
        self._start_listeners: List[Callable[[TenantRecord], None]] = []
        #: high-water mark of concurrently running tenants
        self.max_concurrent = 0

    # -- submission ----------------------------------------------------------
    def submit(self, spec: JobSpec, at: Optional[float] = None) -> TenantRecord:
        """Submit one job, now or at absolute sim time ``at``."""
        rec = TenantRecord(self, spec, self._seq)
        self._seq += 1
        self.records.append(rec)
        self._open += 1
        if at is None or at <= self.sim.now:
            self._enqueue(rec)
        else:
            self._pending_arrivals += 1
            timer = self.sim.timeout(at - self.sim.now)

            def arrive(_e, rec=rec):
                self._pending_arrivals -= 1
                self._enqueue(rec)

            timer.callbacks.append(arrive)
        return rec

    def submit_many(self, arrivals: List[Arrival]) -> List[TenantRecord]:
        return [self.submit(a.spec, at=a.at) for a in arrivals]

    def on_start(self, callback: Callable[[TenantRecord], None]) -> None:
        """Subscribe to job starts (tests use this to aim chaos)."""
        self._start_listeners.append(callback)

    def drain(self) -> Event:
        """Event that fires once every submitted job has reached a
        terminal state (done/failed/rejected) and no arrivals are
        pending.  Run the simulator until this to soak a stream."""
        if self._drained is None:
            self._drained = self.sim.event()
            self._check_drained()
        return self._drained

    # -- internals -----------------------------------------------------------
    def _enqueue(self, rec: TenantRecord) -> None:
        if rec.submitted_at is None:
            rec.submitted_at = self.sim.now
        rec.state = "queued"
        self.queue.append(rec)
        # Priority classes first, FIFO by original submission order
        # within a class (and across requeues).  Deliberately NOT pure
        # seq: a preempted victim keeps its seq, and sorting it ahead of
        # the higher-priority job that evicted it would hand the nodes
        # straight back -- an eviction/restart livelock.
        self.queue.sort(key=lambda r: (-r.spec.priority, r.seq))
        self._trace("sched.submit", rec)
        self._pump()

    def _trace(self, event: str, rec: TenantRecord, **args) -> None:
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(event, "sched", job=rec.job_id, **args)

    def _build_job(self, rec: TenantRecord, alloc: Allocation):
        spec = rec.spec
        app = spec.make_app()
        if spec.recovery == "failstop":
            return MpiJob(
                self.machine, app, spec.ranks, spec.ppn,
                name=rec.job_id, alloc=alloc, job_id=rec.job_id,
            )
        from repro.fmi.job import FmiJob

        return FmiJob(
            self.machine, app, spec.ranks, spec.ppn,
            config=spec.make_config(), name=rec.job_id,
            alloc=alloc, job_id=rec.job_id,
        )

    def _try_start(self, rec: TenantRecord, backfilled: bool) -> bool:
        spec = rec.spec
        idle_before = self.rm.idle_count
        alloc = self.rm.try_allocate(
            spec.num_nodes * spec.num_copies, num_spares=spec.spares
        )
        if alloc is None:
            return False
        if self.pool is not None:
            alloc.spare_pool = self.pool
        job = self._build_job(rec, alloc)
        self.queue.remove(rec)
        rec.job = job
        rec.alloc = alloc
        rec.state = "running"
        rec.backfilled = backfilled
        rec.idle_before_start = idle_before
        rec.nodes = [n.id for n in alloc.all_nodes]
        if rec.started_at is None:
            # first start: record the queue wait
            rec.started_at = self.sim.now
            wait = rec.wait_s or 0.0
            if self.sim.metrics.enabled:
                self.sim.metrics.histogram(
                    "sched.wait_s", job=rec.job_id
                ).observe(wait)
        else:
            rec.started_at = self.sim.now
        self.running[rec.job_id] = rec
        self.max_concurrent = max(self.max_concurrent, len(self.running))
        self._trace(
            "sched.start", rec, nodes=list(rec.nodes),
            backfilled=backfilled, idle_before=idle_before,
        )
        done = job.launch()
        done.callbacks.append(lambda evt, rec=rec: self._job_done(rec, evt))
        for cb in self._start_listeners:
            cb(rec)
        return True

    def _job_done(self, rec: TenantRecord, evt: Event) -> None:
        now = self.sim.now
        rec.finished_at = now
        if rec.started_at is not None:
            rec.busy_node_s += (now - rec.started_at) * len(rec.nodes)
            rec.attempts.append((rec.started_at, now, list(rec.nodes)))
        self.running.pop(rec.job_id, None)
        if evt.ok:
            rec.state = "done"
            rec.result = evt.value
            self._trace("sched.finish", rec, wait=rec.wait_s,
                        service=rec.service_s)
            if self.sim.metrics.enabled:
                spec = rec.spec
                service = rec.service_s or spec.ideal_runtime
                self.sim.metrics.gauge(
                    "sched.goodput", job=rec.job_id
                ).set(spec.ideal_runtime / service if service > 0 else 0.0)
        elif rec.state == "preempted":
            rec.preemptions += 1
            rec.restarts += 1
            self._count_restart(rec)
            self._trace("sched.requeue", rec, cause="preempted")
            self._enqueue(rec)
        elif (
            isinstance(evt.value, JobAborted)
            and rec.spec.recovery == "failstop"
            and rec.restarts < rec.spec.max_restarts
        ):
            # The classic batch loop: relaunch through the queue.
            rec.restarts += 1
            self._count_restart(rec)
            rec.state = "requeueing"
            self._trace("sched.requeue", rec, cause=str(evt.value))
            delay = self.sim.timeout(self.machine.spec.job_relaunch_latency)
            delay.callbacks.append(lambda _e, rec=rec: self._enqueue(rec))
        else:
            rec.state = "failed"
            rec.failure = evt.value
            self._trace("sched.fail", rec, cause=str(evt.value))
        self._settle(rec)
        if self.pool is not None and not self.queue:
            # Cluster has slack: restock the shared reserve.
            self.pool.refill(self._pool_target)
        self._pump()

    def _count_restart(self, rec: TenantRecord) -> None:
        if self.sim.metrics.enabled:
            self.sim.metrics.counter("sched.restarts", job=rec.job_id).inc()

    def _settle(self, rec: TenantRecord) -> None:
        if rec.state in _TERMINAL:
            self._open -= 1
            self._check_drained()

    def _check_drained(self) -> None:
        if (
            self._drained is not None
            and not self._drained.triggered
            and self._open == 0
            and self._pending_arrivals == 0
        ):
            self._drained.succeed(self.summary())

    # -- the pump: FCFS + EASY backfill (+ optional preemption) --------------
    def _pump(self) -> None:
        if self._pumping:
            return
        self._pumping = True
        try:
            progress = True
            while progress and self.queue:
                progress = False
                head = self.queue[0]
                if head.spec.total_nodes > len(self.machine.live_nodes):
                    # Can never fit (cluster too small / shrunk): fail
                    # it rather than starve everyone behind it.
                    self.queue.remove(head)
                    head.state = "rejected"
                    head.finished_at = self.sim.now
                    head.failure = RuntimeError(
                        f"{head.spec.total_nodes} nodes requested, "
                        f"cluster has {len(self.machine.live_nodes)}"
                    )
                    self._trace("sched.fail", head, cause="unsatisfiable")
                    self._settle(head)
                    progress = True
                    continue
                if self._try_start(head, backfilled=False):
                    progress = True
                    continue
                if self.pool is not None and (
                    self.rm.idle_count
                    < head.spec.total_nodes
                    <= self.rm.idle_count + len(self.pool)
                ):
                    # The warm reserve yields to queue pressure: break
                    # pool nodes back into the idle pool so the head can
                    # start (restocked later, when the queue is empty).
                    while self.rm.idle_count < head.spec.total_nodes:
                        node = self.pool.take()
                        if node is None:
                            break
                        self.rm.return_node(node)
                    if self._try_start(head, backfilled=False):
                        progress = True
                        continue
                if self.preempt and self._preempt_for(head):
                    if self._try_start(head, backfilled=False):
                        progress = True
                        continue
                if not self.backfill:
                    break
                shadow, extra = self._shadow_window(head)
                for rec in list(self.queue[1:]):
                    if self._backfill_ok(rec, shadow, extra):
                        if self._try_start(rec, backfilled=True):
                            rec.head_need_at_start = head.spec.total_nodes
                            progress = True
                            break
        finally:
            self._pumping = False

    def _shadow_window(self, head: TenantRecord):
        """EASY reservation for the blocked head: (shadow time, extra).

        Walk the running jobs in estimated-completion order until the
        head's footprint fits; that completion is the *shadow* time, and
        ``extra`` is how many idle-at-shadow nodes the head leaves over
        for backfill jobs that would outlive the shadow.
        """
        need = head.spec.total_nodes
        idle = self.rm.idle_count
        now = self.sim.now
        ends = sorted(
            (
                max(rec.started_at + rec.spec.estimated_runtime, now),
                len(rec.nodes),
            )
            for rec in self.running.values()
        )
        for end, freed in ends:
            idle += freed
            if idle >= need:
                return end, idle - need
        return math.inf, 0

    def _backfill_ok(self, rec: TenantRecord, shadow: float, extra: int) -> bool:
        need = rec.spec.total_nodes
        if need > self.rm.idle_count:
            return False
        if self.sim.now + rec.spec.estimated_runtime <= shadow:
            return True  # done before the head's reservation matures
        return need <= extra  # uses only nodes the reservation leaves over

    def _preempt_for(self, head: TenantRecord) -> bool:
        """Evict strictly-lower-priority running jobs until the head
        fits.  Victims are chosen lowest-priority-first, youngest-first
        (least work lost), deterministically."""
        need = head.spec.total_nodes
        freed = self.rm.idle_count
        victims = sorted(
            (r for r in self.running.values()
             if r.spec.priority < head.spec.priority),
            key=lambda r: (r.spec.priority, -r.seq),
        )
        chosen = []
        for victim in victims:
            if freed >= need:
                break
            freed += len(victim.nodes)
            chosen.append(victim)
        if freed < need or not chosen:
            return False
        for victim in chosen:
            victim.state = "preempted"
            self._trace("sched.preempt", victim, by=head.job_id)
            victim.job.abort(f"preempted by {head.job_id}")
        return True

    # -- results -------------------------------------------------------------
    def summary(self) -> SchedSummary:
        return SchedSummary(self)

    def shutdown(self) -> None:
        """Return the shared pool's nodes (end of the service window)."""
        if self.pool is not None:
            self.pool.drain()
