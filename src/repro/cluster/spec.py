"""Machine descriptions and calibrated hardware constants.

The constants here are the *only* quantitative inputs of the
reproduction.  They come from:

* Table II of the paper (Sierra: 1,856 compute nodes, 12 cores, 24 GB
  RAM with 32 GB/s peak memory bandwidth, QLogic QDR InfiniBand);
* Table III (ping-pong calibration: ~3.56 us 1-byte latency and
  ~3.22 GB/s large-message bandwidth);
* Section VI-C (Lustre ``/p/lscratchd`` at 50 GB/s for level-2 C/R);
* the Coastal cluster failure rates used for Figs 16-17 (level-1 MTBF
  130 h, level-2 MTBF 650 h).

Everything downstream (transport, checkpoint engine, analytic models)
reads these specs rather than hard-coding numbers, so a user can model
a different machine by building another :class:`ClusterSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "NodeSpec",
    "NetworkSpec",
    "FilesystemSpec",
    "ClusterSpec",
    "SIERRA",
    "TSUBAME2",
    "COASTAL",
    "GiB",
    "MiB",
    "KiB",
]

KiB = 1024
MiB = 1024**2
GiB = 1024**3

#: Seconds per (365.25-day) year, used to convert failures/year rates.
SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class NodeSpec:
    """Per-node hardware description."""

    cores: int = 12
    #: bytes of DRAM per node
    memory_bytes: float = 24 * GiB
    #: peak CPU memory bandwidth, bytes/s (Table II: 32 GB/s)
    memory_bw: float = 32e9
    #: per-core double-precision compute rate actually achieved by the
    #: Himeno stencil kernel, flop/s.  Calibrated so 1,536 processes
    #: reach ~2.1 TFlops as in Fig 15 (~1.37 GFlops per process).
    core_flops: float = 1.37e9


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect description (QLogic QDR InfiniBand on Sierra).

    ``link_bw`` is calibrated from Table III's 8 MB ping-pong bandwidth
    (3.227 GB/s); one-byte latency decomposes into wire latency plus a
    per-message software overhead charged at each endpoint, which
    differs slightly between the MPI (MVAPICH2) and FMI transports --
    that difference *is* Table III's 3.555 us vs 3.573 us.
    """

    #: NIC / link bandwidth per direction, bytes/s
    link_bw: float = 3.24e9
    #: one-way wire/switch latency, seconds
    wire_latency: float = 1.5e-6
    #: per-message software overhead per endpoint, MPI transport
    sw_overhead_mpi: float = 1.0275e-6
    #: per-message software overhead per endpoint, FMI transport
    sw_overhead_fmi: float = 1.0365e-6
    #: time to establish one reliable connection (QP pair etc.)
    connect_latency: float = 25e-6
    #: delay before ibverbs reports a dead peer as a disconnection
    #: event (Section VI-A: "ibverbs waits approximately 0.2 seconds")
    ibverbs_close_delay: float = 0.2
    #: per-hop forwarding delay when a failure notification cascades
    #: through the overlay (explicit connection closes + event handling).
    #: Calibrated so notification time grows from ~0.27 s at 48 procs to
    #: ~0.35 s at 1536 procs (Fig 13).
    notify_hop_delay: float = 0.025
    #: cost of establishing one overlay (ibverbs RC) connection during
    #: the H2 Connecting state; the log-ring build time in Fig 14 is
    #: ceil(log2 n) of these.
    overlay_connect_cost: float = 0.028


@dataclass(frozen=True)
class FilesystemSpec:
    """Node-local tmpfs and global PFS characteristics."""

    #: tmpfs streaming bandwidth, bytes/s.  Writing "to memory via a
    #: file system" (SCR's level-1 path) goes through VFS copies,
    #: per-block CRC32 computation, and metadata updates, so the
    #: *effective* per-process streaming rate is far below raw memcpy.
    #: Calibrated (together with the CRC read-back pass in
    #: ``TmpfsStorage``) so MPI+C trails FMI+C by ~10 % on Himeno with
    #: Vaidya-tuned intervals at MTBF = 1 min (Fig 15).
    tmpfs_bw: float = 0.6e9
    #: per-file open/close/metadata cost for tmpfs, seconds
    tmpfs_latency: float = 150e-6
    #: parallel filesystem aggregate bandwidth, bytes/s (Lustre, 50 GB/s)
    pfs_bw: float = 50e9
    #: per-operation PFS latency (metadata round trips), seconds
    pfs_latency: float = 2e-3


@dataclass(frozen=True)
class ClusterSpec:
    """A whole machine: nodes + network + storage + bootstrap costs."""

    name: str = "generic"
    num_nodes: int = 16
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    filesystem: FilesystemSpec = field(default_factory=FilesystemSpec)
    #: time for the resource manager to grant an idle spare node
    spare_grant_latency: float = 0.5
    #: time fmirun.task takes to fork/exec one application process
    proc_spawn_latency: float = 0.02
    #: per-process cost of loading the executable/libraries at launch
    exec_load_latency: float = 0.15
    #: extra fixed cost of a full job (re)launch through the resource
    #: manager -- scheduling, prolog, remote daemons (MPI fail-stop path)
    job_relaunch_latency: float = 5.0
    #: Bootstrap scaling.  Fig 14 shows MPI_Init growing ~sqrt(n)
    #: (launcher/PMI contention): ~0.9 s at 48 procs to ~4.5 s at 1536.
    #: FMI's PMGR bootstrap exchanges roughly half the state, making
    #: FMI_Init "about two times faster" (Section VI-A).
    mpi_init_sqrt_coeff: float = 0.115
    fmi_bootstrap_sqrt_coeff: float = 0.0575
    #: fixed component of either bootstrap (daemon setup, PMI exchange)
    bootstrap_fixed_cost: float = 0.10

    # -- derived bootstrap-time models (shared by runtimes & benches) ----
    def mpi_init_time(self, nprocs: int) -> float:
        """Modelled MVAPICH2/SLURM ``MPI_Init`` time (Fig 14 baseline)."""
        return self.bootstrap_fixed_cost + self.mpi_init_sqrt_coeff * nprocs**0.5

    def fmi_bootstrap_time(self, nprocs: int) -> float:
        """Modelled H1 (PMGR endpoint-exchange) time for FMI."""
        return self.bootstrap_fixed_cost + self.fmi_bootstrap_sqrt_coeff * nprocs**0.5

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        """Copy of this spec with a different node count."""
        return replace(self, num_nodes=num_nodes)


#: LLNL Sierra (Table II): 1,856 compute nodes of 1,944 total.
SIERRA = ClusterSpec(name="sierra", num_nodes=1944)

#: TSUBAME2.0 -- used for the failure-characteristics experiments
#: (Table I / Fig 1).  ~1,400 compute nodes.
TSUBAME2 = ClusterSpec(name="tsubame2", num_nodes=1408)

#: LLNL Coastal -- source of the level-1/level-2 failure rates behind
#: Figs 16 and 17 (L1 MTBF = 130 h, L2 MTBF = 650 h).
COASTAL = ClusterSpec(name="coastal", num_nodes=1152)

#: Coastal failure rates from Section VI-C (per second).
COASTAL_L1_RATE = 2.13e-6
COASTAL_L2_RATE = 4.27e-7
COASTAL_L1_MTBF_HOURS = 130.0
COASTAL_L2_MTBF_HOURS = 650.0
