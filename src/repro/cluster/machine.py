"""The assembled machine: nodes + fabric + storage + failure plumbing."""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.cluster.failures import FailureInjector, FailureRecord, FailureType
from repro.cluster.network import Fabric
from repro.cluster.node import Node
from repro.cluster.resource_manager import ResourceManager
from repro.cluster.spec import ClusterSpec
from repro.cluster.filesystem import ParallelFilesystem
from repro.simt.kernel import Simulator
from repro.simt.rng import RngRegistry

__all__ = ["Machine"]


class Machine:
    """A complete simulated cluster.

    Construction is cheap even for thousands of nodes -- resources are
    lazy event objects, not threads.  Typical use::

        sim = Simulator()
        machine = Machine(sim, SIERRA.with_nodes(128), RngRegistry(seed))
        ...launch a job on machine.rm.allocate(64, num_spares=4)...
    """

    def __init__(self, sim: Simulator, spec: ClusterSpec, rng: Optional[RngRegistry] = None):
        self.sim = sim
        self.spec = spec
        self.rng = rng or RngRegistry(0)
        self.nodes: List[Node] = [Node(sim, i, spec) for i in range(spec.num_nodes)]
        self.fabric = Fabric(sim, spec.network)
        fs = spec.filesystem
        self.pfs = ParallelFilesystem(sim, fs.pfs_bw, fs.pfs_latency)
        self.rm = ResourceManager(sim, self.nodes, grant_latency=spec.spare_grant_latency)
        self._death_listeners: List[Callable[[Node, Any], None]] = []
        #: live limping nodes right now (O(1) for the macro-event
        #: collective eligibility check; maintained via node sinks)
        self.limping_count = 0
        for node in self.nodes:
            node.on_crash(self._node_crashed)
            node._limp_sink = self._limp_transition

    def _limp_transition(self, delta: int) -> None:
        self.limping_count += delta

    # -- liveness -----------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    @property
    def live_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.alive]

    def on_node_death(self, callback: Callable[[Node, Any], None]) -> None:
        """Subscribe to node-crash notifications (endpoint manager etc.)."""
        self._death_listeners.append(callback)

    def remove_death_listener(self, callback: Callable[[Node, Any], None]) -> None:
        """Unsubscribe (job teardown: tenants come and go, the machine
        stays).  Unknown callbacks are ignored."""
        try:
            self._death_listeners.remove(callback)
        except ValueError:
            pass

    def _node_crashed(self, node: Node, cause: Any) -> None:
        self.rm.node_failed(node)
        for listener in list(self._death_listeners):
            listener(node, cause)

    def fail_nodes(self, node_ids: Sequence[int], cause: Any = "injected") -> None:
        """Crash a set of nodes simultaneously."""
        for nid in node_ids:
            self.nodes[nid].crash(cause)

    # -- gray failures ---------------------------------------------------------
    def partition(self, groups: Sequence[Sequence[int]], tag: str = "") -> str:
        """Split the fabric into components of node ids (see Fabric)."""
        return self.fabric.partition(groups, tag)

    def heal_partition(self) -> None:
        self.fabric.heal()

    def limp_nodes(
        self,
        node_ids: Sequence[int],
        bw_factor: float = 1.0,
        latency_factor: float = 1.0,
    ) -> None:
        """Degrade the network path of a set of (live) nodes."""
        for nid in node_ids:
            self.nodes[nid].set_limp(bw_factor, latency_factor)

    def unlimp_nodes(self, node_ids: Sequence[int]) -> None:
        for nid in node_ids:
            if self.nodes[nid].alive:
                self.nodes[nid].clear_limp()

    # -- failure injection -----------------------------------------------------------
    def make_injector(
        self,
        types: Sequence[FailureType],
        crash_nodes: bool = True,
        stream: str = "failures",
    ) -> FailureInjector:
        """Build a component-level injector wired to this machine."""

        def on_failure(record: FailureRecord) -> None:
            self.fail_nodes(record.nodes, cause=record.type.name)

        return FailureInjector(
            self.sim,
            self.rng.stream(stream),
            types,
            self.spec.num_nodes,
            on_failure=on_failure if crash_nodes else None,
        )
