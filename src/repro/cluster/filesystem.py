"""Storage models: node-local tmpfs and a shared parallel filesystem.

Both store *real bytes* (checkpoint files written here are read back
and verified bit-for-bit by the tests), while charging simulated time
through fair-share bandwidth resources.  A tmpfs dies with its node --
that is the whole reason the paper needs XOR encoding across nodes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.simt.kernel import Event, Simulator
from repro.simt.resources import BandwidthResource

__all__ = ["Tmpfs", "ParallelFilesystem", "FileLostError"]


class FileLostError(OSError):
    """Reading a file whose backing store was destroyed (node crash)."""


class _FilesystemBase:
    """Common open/write/read plumbing for both storage tiers."""

    def __init__(self, sim: Simulator, bandwidth: float, latency: float, name: str):
        self.sim = sim
        self.latency = latency
        self._bw = BandwidthResource(sim, bandwidth, name=name)
        self._files: Dict[str, bytes] = {}
        self._destroyed = False

    # -- capacity-less data plane ------------------------------------------
    def write(self, path: str, data: bytes, nbytes: Optional[float] = None) -> Event:
        """Write ``data`` under ``path``.

        ``nbytes`` is the *declared* size used for timing; it defaults
        to ``len(data)``.  (Large-scale experiments write representative
        buffers but charge for full checkpoint sizes -- see
        ``repro.fmi.payload``.)
        """
        size = float(len(data)) if nbytes is None else float(nbytes)
        done = self._bw.transfer(size, overhead=self.latency)
        blob = bytes(data)

        def commit(_evt: Event) -> None:
            if not self._destroyed:
                self._files[path] = blob

        done.callbacks.append(commit)
        return done

    def read(self, path: str, nbytes: Optional[float] = None) -> Event:
        """Read ``path``; the event fires with the stored bytes."""
        if self._destroyed or path not in self._files:
            evt = Event(self.sim)
            evt.fail(FileLostError(f"{path}: no such file (or store destroyed)"))
            return evt
        blob = self._files[path]
        size = float(len(blob)) if nbytes is None else float(nbytes)
        done = self._bw.transfer(size, overhead=self.latency)
        result = Event(self.sim)

        def deliver(_evt: Event) -> None:
            if self._destroyed:
                result.fail(FileLostError(f"{path}: store destroyed mid-read"))
            else:
                result.succeed(blob)

        done.callbacks.append(deliver)
        return result

    def unlink(self, path: str) -> None:
        self._files.pop(path, None)

    def exists(self, path: str) -> bool:
        return not self._destroyed and path in self._files

    def listdir(self) -> list:
        return sorted(self._files)

    @property
    def bandwidth(self) -> float:
        return self._bw.capacity

    def time_for(self, nbytes: float) -> float:
        """Uncontended time to stream ``nbytes`` (planning helper)."""
        return self.latency + nbytes / self._bw.capacity


class Tmpfs(_FilesystemBase):
    """RAM-backed node-local filesystem (SCR's level-1 target).

    Destroyed when the owning node crashes: every file is lost, which
    models the loss of in-memory checkpoints on node failure.
    """

    def __init__(self, sim: Simulator, bandwidth: float, latency: float, node_id: int):
        super().__init__(sim, bandwidth, latency, name=f"tmpfs[{node_id}]")
        self.node_id = node_id

    def destroy(self) -> None:
        """Node crash: all files are gone, further I/O fails."""
        self._destroyed = True
        self._files.clear()


class ParallelFilesystem(_FilesystemBase):
    """The shared PFS (Lustre-like): survives node failures.

    One global bandwidth pipe (50 GB/s on Sierra) shared by every
    writer on the machine, which is exactly why level-2 checkpoints are
    expensive at scale (Fig 17).
    """

    def __init__(self, sim: Simulator, bandwidth: float, latency: float):
        super().__init__(sim, bandwidth, latency, name="pfs")
