"""A SLURM-like resource manager.

Supports the two spare-node strategies discussed in Section II-B of
the paper:

* **Pre-reserved spares** -- a job asks for, e.g., 64 compute nodes
  plus 6 spares; replacements come from the job's own spare list with
  no resource-manager round trip (``fmirun`` reads them from the
  machinefile).
* **On-demand allocation** -- when the spare list is exhausted,
  ``fmirun`` asks the resource manager; the grant costs
  ``spare_grant_latency`` if an idle node exists, otherwise the request
  queues until one is released.

Multi-tenant service mode adds a third tier between those two: a
scheduler-held :class:`SparePool` shared by every tenant, consulted by
:meth:`Allocation.grow` before falling back to an on-demand grant.

Node accounting is exact: every allocation tracks the nodes it *owns*
(the initial grant plus anything acquired mid-job through spares or
``grow()``), release is idempotent, and a grant racing a cancelled or
aborted waiter re-enters the pool instead of stranding.  Released nodes
are handed to queued waiters strictly FIFO and re-enter the idle list
in allocation order, so same-instant release/grant races resolve
deterministically.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.cluster.node import Node
from repro.simt.kernel import Event, Simulator

__all__ = ["ResourceManager", "Allocation", "AllocationError", "SparePool"]


class AllocationError(RuntimeError):
    """The request can never be satisfied (asked for too many nodes)."""


class Allocation:
    """A set of nodes granted to one job, with an optional spare list.

    The allocation owns every node it has been granted -- the initial
    compute + spare lists and anything acquired mid-job via
    :meth:`grow` -- and returns all of them (the live ones) to the
    resource manager exactly once, at :meth:`release`.
    """

    def __init__(
        self, rm: "ResourceManager", job_id: int, nodes: List[Node], spares: List[Node]
    ):
        self.rm = rm
        self.job_id = job_id
        self.nodes = nodes
        self.spares = spares
        self.released = False
        #: shared :class:`SparePool` consulted by :meth:`grow` before
        #: the on-demand RM path (the scheduler attaches this)
        self.spare_pool: Optional["SparePool"] = None
        # Insertion-ordered ownership set: deterministic release order.
        self._owned: Dict[Node, None] = dict.fromkeys(nodes + spares)
        self._pending_grows: List[Event] = []

    @property
    def all_nodes(self) -> List[Node]:
        """Every node this allocation currently owns (in grant order)."""
        return list(self._owned)

    def adopt(self, node: Node) -> None:
        """Record a node as owned (returned to the pool at release)."""
        self._owned.setdefault(node, None)

    def disown(self, node: Node) -> None:
        self._owned.pop(node, None)

    def take_spare(self) -> Optional[Node]:
        """Pop the next *live* pre-reserved spare, or None.

        The spare stays owned by the allocation: it is now a compute
        node and comes back to the pool when the job releases.
        """
        while self.spares:
            node = self.spares.pop(0)
            if node.alive:
                return node
            self._owned.pop(node, None)
        return None

    def grow(self) -> Event:
        """Acquire one more node mid-job (on-demand spare path).

        One seam for both acquisition tiers beyond the pre-reserved
        list: the shared :attr:`spare_pool` (immediate handoff, the
        nodes are already granted to the scheduler) when one is
        attached and stocked, else an on-demand resource-manager grant
        (``grant_latency``, queueing when the machine is full).  The
        returned event fires with a :class:`Node` that is already owned
        by this allocation.  Cancelling the event withdraws the
        request; a grant racing the cancel re-enters the pool instead
        of stranding.
        """
        if self.released:
            raise RuntimeError("grow() on a released allocation")
        pool = self.spare_pool
        node = pool.take() if pool is not None else None
        if node is not None:
            evt = Event(self.rm.sim)
            handoff = self.rm.sim.timeout(0.0)

            def deliver(_e, node=node, evt=evt):
                if evt in self._pending_grows:
                    self._pending_grows.remove(evt)
                if self.released or evt.triggered or evt.cancelled:
                    pool.put(node)  # withdrawn: back to the shared pool
                else:
                    self.adopt(node)
                    evt.succeed(node)

            handoff.callbacks.append(deliver)
        else:
            evt = self.rm.request_replacement()
            evt.callbacks.append(self._adopt_grant)
        self._pending_grows.append(evt)
        return evt

    def _adopt_grant(self, evt: Event) -> None:
        if evt in self._pending_grows:
            self._pending_grows.remove(evt)
        if self.released:
            self.rm._reclaim(evt.value)
        else:
            self.adopt(evt.value)

    def return_node(self, node: Node) -> None:
        """Hand one owned node back mid-job (the drain path): it leaves
        this allocation for good, so release will not reclaim it again."""
        self.disown(node)
        self.rm.return_node(node)

    def release(self) -> None:
        """Return every live owned node to the idle pool (idempotent).

        Pending :meth:`grow` requests are withdrawn; grants already in
        flight re-enter the pool when they land.
        """
        if self.released:
            return
        self.released = True
        for evt in self._pending_grows:
            if not evt.triggered:
                evt.cancel()
        self._pending_grows.clear()
        self.rm._release(self)


class SparePool:
    """A warm reserve of granted nodes shared by every tenant.

    The scheduler stocks it from the idle pool and attaches it to each
    job's allocation (``alloc.spare_pool = pool``); ``Allocation.grow``
    then draws from it with an *immediate* handoff -- the nodes were
    already granted to the scheduler, so no resource-manager round trip
    is charged.  Nodes drawn from the pool are owned by the borrowing
    allocation and return to the resource manager (not the pool) when
    that job releases; the scheduler tops the pool back up with
    :meth:`refill` when the cluster has slack.
    """

    def __init__(self, rm: "ResourceManager", size: int = 0):
        self.rm = rm
        self._nodes: List[Node] = rm.acquire_idle(size)

    def __len__(self) -> int:
        self._gc()
        return len(self._nodes)

    def _gc(self) -> None:
        self._nodes = [n for n in self._nodes if n.alive]

    def take(self) -> Optional[Node]:
        """Pop the next live pooled node, or None when empty."""
        while self._nodes:
            node = self._nodes.pop(0)
            if node.alive:
                return node
        return None

    def put(self, node: Node) -> None:
        """Return a (live) node to the pool."""
        if node.alive:
            self._nodes.append(node)

    def refill(self, target: int) -> int:
        """Top up to ``target`` nodes from the idle pool; returns how
        many were actually acquired (the idle pool may be short)."""
        self._gc()
        grabbed = self.rm.acquire_idle(max(0, target - len(self._nodes)))
        self._nodes.extend(grabbed)
        return len(grabbed)

    def drain(self) -> None:
        """Give every pooled node back to the resource manager."""
        nodes, self._nodes = self._nodes, []
        for node in nodes:
            self.rm._reclaim(node)


class ResourceManager:
    """Tracks idle nodes; grants allocations and single replacements."""

    def __init__(self, sim: Simulator, nodes: List[Node], grant_latency: float = 0.5):
        self.sim = sim
        self.grant_latency = grant_latency
        self._idle: List[Node] = list(nodes)
        self._idle_set = set(map(id, nodes))
        self._pending: Deque[Event] = deque()
        self._allocs: Dict[int, Allocation] = {}
        self._next_job = 0

    # -- bookkeeping ----------------------------------------------------------
    @property
    def idle_count(self) -> int:
        self._gc_idle()
        return len(self._idle)

    def _gc_idle(self) -> None:
        if any(not n.alive for n in self._idle):
            self._idle = [n for n in self._idle if n.alive]
            self._idle_set = set(map(id, self._idle))

    def _pop_idle(self, count: int) -> List[Node]:
        taken, self._idle = self._idle[:count], self._idle[count:]
        self._idle_set.difference_update(map(id, taken))
        return taken

    def node_failed(self, node: Node) -> None:
        """Called by the machine when a node dies; drop it from the pool."""
        self._gc_idle()

    # -- allocation --------------------------------------------------------------
    def allocate(self, num_nodes: int, num_spares: int = 0) -> Allocation:
        """Grant ``num_nodes`` + ``num_spares`` idle nodes immediately.

        Raises :class:`AllocationError` if not enough idle nodes exist
        (callers that queue jobs instead -- the service-mode scheduler
        -- use :meth:`try_allocate`).
        """
        alloc = self.try_allocate(num_nodes, num_spares)
        if alloc is None:
            want = num_nodes + num_spares
            raise AllocationError(
                f"requested {want} nodes, only {len(self._idle)} idle"
            )
        return alloc

    def try_allocate(self, num_nodes: int, num_spares: int = 0) -> Optional[Allocation]:
        """Like :meth:`allocate` but returns None when the idle pool is
        short (the scheduler's non-raising admission probe)."""
        self._gc_idle()
        want = num_nodes + num_spares
        if want > len(self._idle):
            return None
        granted = self._pop_idle(want)
        self._next_job += 1
        alloc = Allocation(self, self._next_job, granted[:num_nodes], granted[num_nodes:])
        self._allocs[alloc.job_id] = alloc
        return alloc

    def acquire_idle(self, count: int) -> List[Node]:
        """Immediately take up to ``count`` idle nodes with no
        allocation bookkeeping (spare-pool stocking).  The caller owns
        them until it hands them back via :meth:`return_node` /
        ``SparePool.drain``."""
        self._gc_idle()
        return self._pop_idle(max(0, count))

    def request_replacement(self) -> Event:
        """Ask for one idle node (on-demand spare path).

        The returned event fires with a :class:`Node` after
        ``grant_latency`` if one is idle, else whenever a node is
        released back to the pool.  Cancel the event to withdraw the
        request: a queued waiter is skipped, and a grant already in
        flight re-enters the pool when it lands.
        """
        evt = Event(self.sim)
        self._gc_idle()
        if self._idle:
            self._grant(self._pop_idle(1)[0], evt)
        else:
            self._pending.append(evt)
        return evt

    def _grant(self, node: Node, waiter: Event) -> None:
        """Deliver ``node`` to ``waiter`` after the grant latency.  A
        waiter that was cancelled (job abort) or served meanwhile must
        not strand the node: it goes straight back through _reclaim."""
        grant = self.sim.timeout(self.grant_latency)

        def deliver(_e, node=node, waiter=waiter):
            if waiter.cancelled or waiter.triggered:
                self._reclaim(node)
            else:
                waiter.succeed(node)

        grant.callbacks.append(deliver)

    def return_node(self, node: Node) -> None:
        """Hand one healthy node back to the pool (e.g. a drained node
        whose job migrated off it).  Pending replacement requests are
        served first."""
        self._reclaim(node)

    def _release(self, alloc: Allocation) -> None:
        self._allocs.pop(alloc.job_id, None)
        for node in alloc.all_nodes:
            self._reclaim(node)

    def _reclaim(self, node: Node) -> None:
        if not node.alive or id(node) in self._idle_set:
            return
        while self._pending:
            waiter = self._pending.popleft()
            if not waiter.cancelled and not waiter.triggered:
                self._grant(node, waiter)
                return
        self._idle.append(node)
        self._idle_set.add(id(node))
