"""A SLURM-like resource manager.

Supports the two spare-node strategies discussed in Section II-B of
the paper:

* **Pre-reserved spares** -- a job asks for, e.g., 64 compute nodes
  plus 6 spares; replacements come from the job's own spare list with
  no resource-manager round trip (``fmirun`` reads them from the
  machinefile).
* **On-demand allocation** -- when the spare list is exhausted,
  ``fmirun`` asks the resource manager; the grant costs
  ``spare_grant_latency`` if an idle node exists, otherwise the request
  queues until one is released.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.cluster.node import Node
from repro.simt.kernel import Event, Simulator

__all__ = ["ResourceManager", "Allocation", "AllocationError"]


class AllocationError(RuntimeError):
    """The request can never be satisfied (asked for too many nodes)."""


class Allocation:
    """A set of nodes granted to one job, with an optional spare list."""

    def __init__(
        self, rm: "ResourceManager", job_id: int, nodes: List[Node], spares: List[Node]
    ):
        self.rm = rm
        self.job_id = job_id
        self.nodes = nodes
        self.spares = spares
        self.released = False

    @property
    def all_nodes(self) -> List[Node]:
        return self.nodes + self.spares

    def take_spare(self) -> Optional[Node]:
        """Pop the next *live* pre-reserved spare, or None."""
        while self.spares:
            node = self.spares.pop(0)
            if node.alive:
                return node
        return None

    def release(self) -> None:
        """Return every live node to the idle pool."""
        if self.released:
            return
        self.released = True
        self.rm._release(self)


class ResourceManager:
    """Tracks idle nodes; grants allocations and single replacements."""

    def __init__(self, sim: Simulator, nodes: List[Node], grant_latency: float = 0.5):
        self.sim = sim
        self.grant_latency = grant_latency
        self._idle: List[Node] = list(nodes)
        self._pending: Deque[Event] = deque()
        self._allocs: Dict[int, Allocation] = {}
        self._next_job = 0

    # -- bookkeeping ----------------------------------------------------------
    @property
    def idle_count(self) -> int:
        self._gc_idle()
        return len(self._idle)

    def _gc_idle(self) -> None:
        self._idle = [n for n in self._idle if n.alive]

    def node_failed(self, node: Node) -> None:
        """Called by the machine when a node dies; drop it from the pool."""
        self._gc_idle()

    # -- allocation --------------------------------------------------------------
    def allocate(self, num_nodes: int, num_spares: int = 0) -> Allocation:
        """Grant ``num_nodes`` + ``num_spares`` idle nodes immediately.

        Raises :class:`AllocationError` if not enough idle nodes exist
        (job submission queueing is out of scope; the paper's jobs have
        dedicated allocations).
        """
        self._gc_idle()
        want = num_nodes + num_spares
        if want > len(self._idle):
            raise AllocationError(
                f"requested {want} nodes, only {len(self._idle)} idle"
            )
        granted, self._idle = self._idle[:want], self._idle[want:]
        self._next_job += 1
        alloc = Allocation(self, self._next_job, granted[:num_nodes], granted[num_nodes:])
        self._allocs[alloc.job_id] = alloc
        return alloc

    def request_replacement(self) -> Event:
        """Ask for one idle node (on-demand spare path).

        The returned event fires with a :class:`Node` after
        ``grant_latency`` if one is idle, else whenever a node is
        released back to the pool.
        """
        evt = Event(self.sim)
        self._gc_idle()
        if self._idle:
            node = self._idle.pop(0)
            grant = self.sim.timeout(self.grant_latency)
            grant.callbacks.append(lambda _e: evt.succeed(node))
        else:
            self._pending.append(evt)
        return evt

    def return_node(self, node: Node) -> None:
        """Hand one healthy node back to the pool (e.g. a drained node
        whose job migrated off it).  Pending replacement requests are
        served first."""
        self._reclaim(node)

    def _release(self, alloc: Allocation) -> None:
        self._allocs.pop(alloc.job_id, None)
        for node in alloc.all_nodes:
            self._reclaim(node)

    def _reclaim(self, node: Node) -> None:
        if not node.alive:
            return
        while self._pending:
            waiter = self._pending.popleft()
            if waiter.callbacks is not None and not waiter.triggered:
                grant = self.sim.timeout(self.grant_latency)
                grant.callbacks.append(
                    lambda _e, n=node, w=waiter: w.succeed(n)
                    if not w.triggered
                    else None
                )
                return
        self._idle.append(node)
