"""A simulated compute node.

A node bundles the shared hardware its processes contend for:

* ``mem_bw``  -- the memory bus (memcpy checkpoints, XOR encoding);
* ``nic_tx`` / ``nic_rx`` -- the full-duplex InfiniBand link;
* ``tmpfs``   -- node-local RAM filesystem (dies with the node);
* a registry of simulated processes, all killed on :meth:`crash`.

Crash listeners (the endpoint manager, ``fmirun``, the resource
manager) subscribe via :meth:`on_crash`.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.cluster.filesystem import Tmpfs
from repro.cluster.spec import ClusterSpec
from repro.simt.kernel import Simulator
from repro.simt.process import Process
from repro.simt.resources import BandwidthResource

__all__ = ["Node", "NodeDownError"]


class NodeDownError(RuntimeError):
    """Operation attempted on a crashed node."""


class Node:
    """One compute node of the simulated machine."""

    def __init__(self, sim: Simulator, node_id: int, spec: ClusterSpec):
        self.sim = sim
        self.id = node_id
        self.spec = spec
        self.alive = True
        ns = spec.node
        self.mem_bw = BandwidthResource(sim, ns.memory_bw, name=f"mem[{node_id}]")
        net = spec.network
        self.nic_tx = BandwidthResource(sim, net.link_bw, name=f"tx[{node_id}]")
        self.nic_rx = BandwidthResource(sim, net.link_bw, name=f"rx[{node_id}]")
        fs = spec.filesystem
        self.tmpfs = Tmpfs(sim, fs.tmpfs_bw, fs.tmpfs_latency, node_id)
        self._procs: List[Process] = []
        self._crash_listeners: List[Callable[["Node", Any], None]] = []
        #: gray-failure degradation factors (1.0 = healthy); >= 1 slows
        #: the node's network path down without killing anything.
        self.limp_bw = 1.0
        self.limp_latency = 1.0
        #: healthy<->limping transition sink (set by Machine so it can
        #: keep an O(1) ``limping_count`` for the macro-event
        #: eligibility check); called with +1 / -1.
        self._limp_sink: Any = None

    # -- process registry ------------------------------------------------------
    def register(self, proc: Process) -> Process:
        """Track ``proc`` so it dies if this node crashes."""
        if not self.alive:
            raise NodeDownError(f"node {self.id} is down")
        self._procs.append(proc)
        return proc

    def spawn(self, generator, name: str = "") -> Process:
        """Spawn a simulated process bound to this node."""
        return self.register(self.sim.spawn(generator, name=name))

    @property
    def processes(self) -> List[Process]:
        """Live processes currently bound to this node."""
        self._procs = [p for p in self._procs if p.alive]
        return list(self._procs)

    # -- memory-bus helpers -----------------------------------------------------
    def memcpy(self, nbytes: float):
        """Copy ``nbytes`` through the memory bus (fair-shared)."""
        return self.mem_bw.transfer(nbytes)

    def compute(self, flops: float, cores: int = 1):
        """Event firing after ``flops`` of work on ``cores`` cores.

        Compute is modelled per-process (each rank owns its core), so
        this is a plain timeout rather than a shared resource.
        """
        cores = max(1, min(cores, self.spec.node.cores))
        return self.sim.timeout(flops / (self.spec.node.core_flops * cores))

    # -- gray failures: limping -------------------------------------------------
    @property
    def limping(self) -> bool:
        return self.limp_bw != 1.0 or self.limp_latency != 1.0

    def set_limp(self, bw_factor: float = 1.0, latency_factor: float = 1.0) -> None:
        """Degrade (or restore) this node's network path.

        A limping node is alive and makes progress -- the defining gray
        failure -- but its NIC runs at ``link_bw / bw_factor`` and every
        message it touches pays ``latency_factor`` times the per-hop
        latency/overhead.  ``set_limp(1.0, 1.0)`` reverts to healthy.
        In-flight transfers keep accrued progress and continue at the
        new rate.
        """
        if not self.alive:
            raise NodeDownError(f"node {self.id} is down")
        if bw_factor < 1.0 or latency_factor < 1.0:
            raise ValueError("limp factors must be >= 1.0")
        was_limping = self.limping
        self.limp_bw = float(bw_factor)
        self.limp_latency = float(latency_factor)
        if self._limp_sink is not None and was_limping != self.limping:
            self._limp_sink(1 if self.limping else -1)
        cap = self.spec.network.link_bw / self.limp_bw
        self.nic_tx.set_capacity(cap)
        self.nic_rx.set_capacity(cap)
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "node.limp", "failure", node=self.id,
                bw_factor=self.limp_bw, latency_factor=self.limp_latency,
            )

    def clear_limp(self) -> None:
        """Restore full network health (no-op on a healthy node)."""
        if self.limping:
            self.set_limp(1.0, 1.0)

    # -- failure ------------------------------------------------------------
    def on_crash(self, callback: Callable[["Node", Any], None]) -> None:
        self._crash_listeners.append(callback)

    def crash(self, cause: Any = "failure") -> None:
        """Unrecoverable node failure.

        Kills every registered process (they are never resumed),
        destroys tmpfs contents, and informs listeners.  Idempotent.
        """
        if not self.alive:
            return
        self.alive = False
        if self._limp_sink is not None and self.limping:
            # A dead node no longer perturbs the fabric; stop counting
            # it against the macro-event eligibility check.
            self._limp_sink(-1)
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "node.crash", "failure", node=self.id, cause=str(cause),
            )
        if self.sim.metrics.enabled:
            self.sim.metrics.counter("node.crashes").inc()
        procs, self._procs = self._procs, []
        for proc in procs:
            proc.kill(cause=f"node {self.id} crash: {cause}")
        self.tmpfs.destroy()
        for listener in list(self._crash_listeners):
            listener(self, cause)

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self.alive else "DOWN"
        return f"<Node {self.id} {state}>"
