"""The interconnect fabric.

A message from node A to node B is modelled cut-through style:

    sender sw overhead  ->  { A.nic_tx  ||  B.nic_rx }  ->  wire
    latency  ->  receiver sw overhead

The bytes occupy the sender's transmit pipe and the receiver's receive
pipe *concurrently* (completion when both fair-share transfers finish),
so a node receiving N simultaneous streams bottlenecks on its single
NIC -- the effect that shapes the XOR-gather restart cost (Fig 11) and
the per-node C/R throughput (Fig 12).

Intra-node messages bypass the NIC and move through the memory bus.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.cluster.node import Node
from repro.cluster.spec import NetworkSpec
from repro.simt.kernel import Event, Simulator
from repro.simt.primitives import AllOf

__all__ = ["Fabric"]


class Fabric:
    """Connects all nodes of a machine; stateless wire + per-node NICs.

    The fabric also owns the *partition* gray-failure state: at most
    one partition at a time splits the node set into components, and
    :meth:`reachable` answers whether two nodes can currently exchange
    bytes.  The wire itself stays stateless -- whether a cut message is
    stalled or dropped is the transport layer's policy.
    """

    def __init__(self, sim: Simulator, spec: NetworkSpec):
        self.sim = sim
        self.spec = spec
        #: total messages moved (observability / tests)
        self.messages_sent = 0
        #: total payload bytes moved
        self.bytes_sent = 0.0
        # -- partition state (None = fully connected) --
        self._partition: Optional[Dict[int, int]] = None
        self._partition_tag = ""
        self._partition_count = 0
        self._partition_listeners: List[Callable[[str, Dict[int, int]], None]] = []
        self._heal_listeners: List[Callable[[str], None]] = []

    # -- partitions ------------------------------------------------------------
    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    @property
    def partition_tag(self) -> str:
        """Tag of the active partition ('' when healed)."""
        return self._partition_tag if self._partition is not None else ""

    def on_partition(self, callback: Callable[[str, Dict[int, int]], None]) -> None:
        """Subscribe ``callback(tag, node_id -> component)`` to cuts."""
        self._partition_listeners.append(callback)

    def on_heal(self, callback: Callable[[str], None]) -> None:
        """Subscribe ``callback(tag)`` to partition heals."""
        self._heal_listeners.append(callback)

    def remove_partition_listener(
        self, callback: Callable[[str, Dict[int, int]], None]
    ) -> None:
        """Unsubscribe from cuts (job teardown); unknown callbacks ignored."""
        try:
            self._partition_listeners.remove(callback)
        except ValueError:
            pass

    def remove_heal_listener(self, callback: Callable[[str], None]) -> None:
        """Unsubscribe from heals (job teardown); unknown callbacks ignored."""
        try:
            self._heal_listeners.remove(callback)
        except ValueError:
            pass

    def partition(self, groups: Iterable[Iterable[int]], tag: str = "") -> str:
        """Split the fabric into components; returns the partition tag.

        ``groups`` lists node ids per component; any node not listed
        joins component 0 (so a single group cleaves "these nodes" off
        from "everyone else").  Only one partition may be active --
        heal before imposing another.
        """
        if self._partition is not None:
            raise RuntimeError(
                f"fabric already partitioned ({self._partition_tag}); heal first"
            )
        # Explicit groups are numbered from 1: component 0 is reserved
        # for unlisted nodes, so a single group really is cleaved off
        # from the rest of the machine.
        component: Dict[int, int] = {}
        for idx, group in enumerate(groups, start=1):
            for nid in group:
                if nid in component:
                    raise ValueError(f"node {nid} appears in two partition groups")
                component[nid] = idx
        self._partition_count += 1
        self._partition = component
        self._partition_tag = tag or f"p{self._partition_count}"
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "net.partition", "failure", tag=self._partition_tag,
                components=max(component.values(), default=0) + 1,
                cut_nodes=sorted(n for n, c in component.items() if c != 0),
            )
        for callback in list(self._partition_listeners):
            callback(self._partition_tag, component)
        return self._partition_tag

    def heal(self) -> None:
        """Remove the active partition (no-op when fully connected)."""
        if self._partition is None:
            return
        tag = self._partition_tag
        self._partition = None
        self._partition_tag = ""
        if self.sim.tracer.enabled:
            self.sim.tracer.instant("net.heal", "failure", tag=tag)
        for callback in list(self._heal_listeners):
            callback(tag)

    def reachable(self, node_a: int, node_b: int) -> bool:
        """Can these two nodes currently exchange bytes?"""
        part = self._partition
        if part is None:
            return True
        return part.get(node_a, 0) == part.get(node_b, 0)

    def transfer_time(self, nbytes: float, sw_overhead: float) -> float:
        """Uncontended end-to-end time for one message (planning)."""
        return (
            2 * sw_overhead + self.spec.wire_latency + nbytes / self.spec.link_bw
        )

    def send(
        self,
        src: Node,
        dst: Node,
        nbytes: float,
        sw_overhead: Optional[float] = None,
    ) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Returns an event that fires (with ``None``) when the last byte
        has landed at ``dst``.  If ``dst`` crashes mid-flight the event
        still fires -- delivery filtering is the transport layer's job
        (a dead node's matching engine no longer exists, so the bytes
        simply vanish, as on real hardware).
        """
        if not src.alive:
            evt = Event(self.sim)
            evt.fail(ConnectionError(f"source node {src.id} is down"))
            return evt
        overhead = self.spec.sw_overhead_fmi if sw_overhead is None else sw_overhead
        self.messages_sent += 1
        self.bytes_sent += nbytes

        if src is dst:
            # Shared-memory path: one pass through the memory bus, no NIC.
            return src.mem_bw.transfer(nbytes, overhead=2 * overhead)

        arrived = Event(self.sim)
        # Limping endpoints stretch the per-message latencies (their
        # NIC bandwidth is already degraded via set_limp); the wire hop
        # pays the slower endpoint's factor.
        lat_factor = max(src.limp_latency, dst.limp_latency)

        def start(_evt: Event) -> None:
            tx = src.nic_tx.transfer(nbytes)
            rx = dst.nic_rx.transfer(nbytes)
            both = AllOf(self.sim, [tx, rx])

            def on_wire(_e: Event) -> None:
                tail = self.sim.timeout(
                    self.spec.wire_latency * lat_factor
                    + overhead * dst.limp_latency
                )
                tail.callbacks.append(
                    lambda _t: arrived.succeed(None)
                    if not arrived.triggered
                    else None
                )

            both.callbacks.append(on_wire)

        # Sender-side software overhead before bytes hit the NIC.
        head = self.sim.timeout(overhead * src.limp_latency)
        head.callbacks.append(start)
        return arrived
