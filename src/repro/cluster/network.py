"""The interconnect fabric.

A message from node A to node B is modelled cut-through style:

    sender sw overhead  ->  { A.nic_tx  ||  B.nic_rx }  ->  wire
    latency  ->  receiver sw overhead

The bytes occupy the sender's transmit pipe and the receiver's receive
pipe *concurrently* (completion when both fair-share transfers finish),
so a node receiving N simultaneous streams bottlenecks on its single
NIC -- the effect that shapes the XOR-gather restart cost (Fig 11) and
the per-node C/R throughput (Fig 12).

Intra-node messages bypass the NIC and move through the memory bus.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.node import Node
from repro.cluster.spec import NetworkSpec
from repro.simt.kernel import Event, Simulator
from repro.simt.primitives import AllOf

__all__ = ["Fabric"]


class Fabric:
    """Connects all nodes of a machine; stateless wire + per-node NICs."""

    def __init__(self, sim: Simulator, spec: NetworkSpec):
        self.sim = sim
        self.spec = spec
        #: total messages moved (observability / tests)
        self.messages_sent = 0
        #: total payload bytes moved
        self.bytes_sent = 0.0

    def transfer_time(self, nbytes: float, sw_overhead: float) -> float:
        """Uncontended end-to-end time for one message (planning)."""
        return (
            2 * sw_overhead + self.spec.wire_latency + nbytes / self.spec.link_bw
        )

    def send(
        self,
        src: Node,
        dst: Node,
        nbytes: float,
        sw_overhead: Optional[float] = None,
    ) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Returns an event that fires (with ``None``) when the last byte
        has landed at ``dst``.  If ``dst`` crashes mid-flight the event
        still fires -- delivery filtering is the transport layer's job
        (a dead node's matching engine no longer exists, so the bytes
        simply vanish, as on real hardware).
        """
        if not src.alive:
            evt = Event(self.sim)
            evt.fail(ConnectionError(f"source node {src.id} is down"))
            return evt
        overhead = self.spec.sw_overhead_fmi if sw_overhead is None else sw_overhead
        self.messages_sent += 1
        self.bytes_sent += nbytes

        if src is dst:
            # Shared-memory path: one pass through the memory bus, no NIC.
            return src.mem_bw.transfer(nbytes, overhead=2 * overhead)

        arrived = Event(self.sim)

        def start(_evt: Event) -> None:
            tx = src.nic_tx.transfer(nbytes)
            rx = dst.nic_rx.transfer(nbytes)
            both = AllOf(self.sim, [tx, rx])

            def on_wire(_e: Event) -> None:
                tail = self.sim.timeout(self.spec.wire_latency + overhead)
                tail.callbacks.append(
                    lambda _t: arrived.succeed(None)
                    if not arrived.triggered
                    else None
                )

            both.callbacks.append(on_wire)

        # Sender-side software overhead before bytes hit the NIC.
        head = self.sim.timeout(overhead)
        head.callbacks.append(start)
        return arrived
