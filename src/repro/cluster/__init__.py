"""repro.cluster -- a discrete-event-simulated HPC machine.

Substitutes for the hardware the paper evaluated on (LLNL's Sierra
cluster, TSUBAME2.0 failure data, the Coastal cluster failure rates):

* :mod:`~repro.cluster.spec` -- machine descriptions with calibrated
  bandwidth/latency constants (Table II of the paper and the values
  needed to reproduce Table III / Figs 10-15).
* :mod:`~repro.cluster.node` -- a compute node: memory bus, full-duplex
  NIC, node-local tmpfs, and a process registry so a crash kills
  everything on the node.
* :mod:`~repro.cluster.network` -- the interconnect fabric (wire
  latency + fair-share NIC bandwidth at both endpoints).
* :mod:`~repro.cluster.filesystem` -- tmpfs and parallel-filesystem
  models with real byte storage (checkpoints written here can actually
  be read back and verified).
* :mod:`~repro.cluster.failures` -- per-component Poisson failure
  injection (Table I / Fig 1 rates) plus simple MTBF-driven injection.
* :mod:`~repro.cluster.resource_manager` -- a SLURM-ish allocator with
  a spare-node pool, used by ``fmirun`` for dynamic node allocation.
* :mod:`~repro.cluster.machine` -- glues the above into a `Machine`.
"""

from repro.cluster.failures import (
    FailureInjector,
    FailureRecord,
    FailureType,
    MtbfInjector,
    TSUBAME2_FAILURE_TYPES,
    TraceInjector,
)
from repro.cluster.filesystem import ParallelFilesystem, Tmpfs
from repro.cluster.machine import Machine
from repro.cluster.network import Fabric
from repro.cluster.node import Node
from repro.cluster.resource_manager import Allocation, ResourceManager
from repro.cluster.spec import (
    COASTAL,
    ClusterSpec,
    FilesystemSpec,
    NetworkSpec,
    NodeSpec,
    SIERRA,
    TSUBAME2,
)

__all__ = [
    "Allocation",
    "COASTAL",
    "ClusterSpec",
    "Fabric",
    "FailureInjector",
    "FailureRecord",
    "FailureType",
    "FilesystemSpec",
    "Machine",
    "MtbfInjector",
    "NetworkSpec",
    "Node",
    "NodeSpec",
    "ParallelFilesystem",
    "ResourceManager",
    "SIERRA",
    "Tmpfs",
    "TSUBAME2",
    "TSUBAME2_FAILURE_TYPES",
    "TraceInjector",
]
