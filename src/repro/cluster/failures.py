"""Failure injection and failure statistics.

Two injectors:

* :class:`FailureInjector` -- per-component Poisson processes with the
  TSUBAME2.0 rates of Table I / Fig 1.  Each component class takes down
  a characteristic number of nodes (its *failure level*): a PSU feeds 4
  nodes, an edge switch 16, a rack 32, the PFS/core switch everything.
* :class:`MtbfInjector` -- the simple "kill something every
  Exp(MTBF)" injector used for the Himeno run-through-failures
  experiment (Fig 15, MTBF = 1 minute) and the notification benchmark.

Failure *records* are kept so experiments can recompute failures/year
and MTBF per class -- that is how Table I and Fig 1 are regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.spec import SECONDS_PER_YEAR
from repro.simt.kernel import Simulator

__all__ = [
    "FailureType",
    "FailureRecord",
    "FailureInjector",
    "MtbfInjector",
    "TraceInjector",
    "EventInjector",
    "LimpInjector",
    "TSUBAME2_FAILURE_TYPES",
    "TSUBAME2_TABLE1_CLASSES",
]


@dataclass(frozen=True)
class FailureType:
    """One failing component class."""

    name: str
    #: number of nodes an instance of this failure takes down
    affected_nodes: int
    #: arrival rate, failures/second (whole machine)
    rate_per_second: float
    #: Fig 1 failure level (1..5), by affected-node count
    level: int

    @property
    def failures_per_year(self) -> float:
        return self.rate_per_second * SECONDS_PER_YEAR

    @property
    def mtbf_seconds(self) -> float:
        return 1.0 / self.rate_per_second

    @property
    def mtbf_days(self) -> float:
        return self.mtbf_seconds / 86400.0

    @staticmethod
    def from_per_year(
        name: str, affected_nodes: int, failures_per_year: float, level: int
    ) -> "FailureType":
        return FailureType(
            name, affected_nodes, failures_per_year / SECONDS_PER_YEAR, level
        )


def _level_for(affected: int) -> int:
    return {1: 1, 4: 2, 16: 3, 32: 4}.get(affected, 5)


# ---------------------------------------------------------------------------
# TSUBAME2.0 component rates.
#
# Table I gives per-class totals (failures/year):
#   PFS+Core switch (1408 nodes): 5.61   Rack (32): 4.20
#   Edge switch (16): 21.02             PSU (4): 12.61
#   Compute node (1): 554.10
# Fig 1 breaks the compute-node class into components with rates on a
# 1e-6 failures/second axis; the component splits below sum exactly to
# the Table I class totals (554.10 / year = 17.56e-6 / s).
# ---------------------------------------------------------------------------
_US = 1e-6  # Fig 1 axis unit: 1e-6 failures / second

TSUBAME2_FAILURE_TYPES: List[FailureType] = [
    # level-1 components (single compute node)
    FailureType("CPU", 1, 7.00 * _US, 1),
    FailureType("Disk", 1, 3.60 * _US, 1),
    FailureType("OtherSW", 1, 2.60 * _US, 1),
    FailureType("Unknown", 1, 1.60 * _US, 1),
    FailureType("M/B", 1, 1.10 * _US, 1),
    FailureType("Memory", 1, 0.90 * _US, 1),
    FailureType("OtherHW", 1, 0.46 * _US, 1),
    FailureType("GPU", 1, 0.30 * _US, 1),
    # multi-node components
    FailureType.from_per_year("PSU", 4, 12.61, 2),
    FailureType.from_per_year("Edge switch", 16, 21.02, 3),
    FailureType.from_per_year("Rack", 32, 4.20, 4),
    FailureType.from_per_year("PFS", 1408, 3.80, 5),
    FailureType.from_per_year("Core switch", 1408, 1.81, 5),
]

#: Table I's five aggregate classes: name -> (affected nodes, member names)
TSUBAME2_TABLE1_CLASSES = [
    ("PFS, Core switch", 1408, ("PFS", "Core switch")),
    ("Rack", 32, ("Rack",)),
    ("Edge switch", 16, ("Edge switch",)),
    ("PSU", 4, ("PSU",)),
    (
        "Compute node",
        1,
        ("CPU", "Disk", "OtherSW", "Unknown", "M/B", "Memory", "OtherHW", "GPU"),
    ),
]


@dataclass
class FailureRecord:
    """One injected failure occurrence."""

    time: float
    type: FailureType
    nodes: List[int] = field(default_factory=list)


class FailureInjector:
    """Poisson failure arrivals for a set of component classes.

    ``on_failure(record)`` is invoked for every arrival; the machine
    layer uses it to crash nodes.  With ``on_failure=None`` the
    injector only records arrivals -- enough for the Table I / Fig 1
    statistics, and much faster for multi-year traces.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        types: Sequence[FailureType],
        num_nodes: int,
        on_failure: Optional[Callable[[FailureRecord], None]] = None,
    ):
        self.sim = sim
        self.rng = rng
        self.types = list(types)
        self.num_nodes = num_nodes
        self.on_failure = on_failure
        self.records: List[FailureRecord] = []
        self._running = False

    # -- node selection ----------------------------------------------------
    def _pick_nodes(self, ftype: FailureType) -> List[int]:
        k = min(ftype.affected_nodes, self.num_nodes)
        if k >= self.num_nodes:
            return list(range(self.num_nodes))
        if k == 1:
            return [int(self.rng.integers(self.num_nodes))]
        # Multi-node components cover aligned blocks (a PSU feeds a
        # fixed group of 4 neighbours, a rack a fixed 32, ...).
        n_blocks = self.num_nodes // k
        block = int(self.rng.integers(n_blocks))
        return list(range(block * k, block * k + k))

    # -- driving -----------------------------------------------------------
    def start(self) -> None:
        """Begin injecting; one arrival process per component class."""
        if self._running:
            raise RuntimeError("injector already started")
        self._running = True
        self.sim.fault_injectors += 1
        for ftype in self.types:
            self.sim.spawn(self._arrivals(ftype), name=f"fail:{ftype.name}")

    def stop(self) -> None:
        if self._running:
            self._running = False
            self.sim.fault_injectors -= 1

    def _arrivals(self, ftype: FailureType):
        while self._running:
            gap = float(self.rng.exponential(1.0 / ftype.rate_per_second))
            yield self.sim.timeout(gap)
            if not self._running:
                return
            record = FailureRecord(self.sim.now, ftype, self._pick_nodes(ftype))
            self.records.append(record)
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "failure.inject", "failure", type=ftype.name,
                    level=ftype.level, nodes=list(record.nodes),
                )
            if self.sim.metrics.enabled:
                self.sim.metrics.counter(
                    "failures.injected", type=ftype.name
                ).inc()
            if self.on_failure is not None:
                self.on_failure(record)

    # -- statistics (Table I / Fig 1 regeneration) ---------------------------
    def observed_rate(self, name: str, duration: float) -> float:
        """Measured failures/second for component ``name`` over ``duration``."""
        count = sum(1 for r in self.records if r.type.name == name)
        return count / duration

    def class_stats(self, duration: float):
        """Per-Table-I-class (failures/year, MTBF days) from the trace."""
        out = []
        for cls_name, affected, members in TSUBAME2_TABLE1_CLASSES:
            count = sum(1 for r in self.records if r.type.name in members)
            per_year = count / duration * SECONDS_PER_YEAR
            mtbf_days = (duration / count) / 86400.0 if count else float("inf")
            out.append((cls_name, affected, per_year, mtbf_days))
        return out


class TraceInjector:
    """Replay a recorded failure trace: ``(time, node_ids)`` pairs.

    Makes failure scenarios exactly reproducible across experiments
    (e.g. replaying one TSUBAME2.0 trace against several runtime
    configurations), and lets tests script multi-failure schedules
    declaratively.
    """

    def __init__(self, sim: Simulator, schedule, kill: Callable[[List[int]], None]):
        self.sim = sim
        self.schedule = sorted(schedule, key=lambda tn: tn[0])
        self.kill = kill
        self.replayed: List[Tuple[float, List[int]]] = []
        self._running = False

    @classmethod
    def from_records(cls, sim: Simulator, records: Sequence[FailureRecord],
                     kill: Callable[[List[int]], None]) -> "TraceInjector":
        return cls(sim, [(r.time, list(r.nodes)) for r in records], kill)

    def start(self) -> None:
        if not self._running:
            self.sim.fault_injectors += 1
        self._running = True
        self.sim.spawn(self._replay(), name="trace-injector")

    def stop(self) -> None:
        if self._running:
            self._running = False
            self.sim.fault_injectors -= 1

    def _replay(self):
        now = self.sim.now
        for time, nodes in self.schedule:
            if time < now:
                continue  # events before start are skipped
            yield self.sim.timeout(time - now)
            now = time
            if not self._running:
                return
            self.replayed.append((time, list(nodes)))
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "failure.inject", "failure", type="trace",
                    nodes=list(nodes),
                )
            if self.sim.metrics.enabled:
                self.sim.metrics.counter("failures.injected", type="trace").inc()
            self.kill(list(nodes))


class EventInjector:
    """Fire an action when a matching *trace event* is recorded.

    This bridges the observability stream back into the failure domain:
    arm it with a predicate over :class:`~repro.obs.tracer.TraceEvent`
    records (e.g. the ``ckpt.encode.begin`` marker, or
    ``recovery.begin``) and it fires ``action`` once, ``delay`` seconds
    after the ``count``-th match.  The chaos campaign engine uses this
    for its on-event triggers ("kill a node exactly when the XOR encode
    starts").

    The action is always deferred through a (possibly zero-delay)
    timeout, never run from inside the tracer callback: the matching
    event is often emitted by the very generator the action is about to
    kill, and a generator cannot be closed from its own frame.

    Requires an attached, *enabled* tracer -- event triggers cannot see
    anything through :data:`~repro.obs.tracer.NULL_TRACER`.
    """

    def __init__(
        self,
        sim: Simulator,
        match: Callable[[object], bool],
        action: Callable[[], None],
        count: int = 1,
        delay: float = 0.0,
    ):
        if count < 1:
            raise ValueError("count must be >= 1")
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.sim = sim
        self.match = match
        self.action = action
        self.count = count
        self.delay = delay
        self.seen = 0
        self.fired_at: Optional[float] = None
        self._armed = False

    def start(self) -> None:
        tracer = self.sim.tracer
        if not getattr(tracer, "enabled", False) or not hasattr(
            tracer, "add_listener"
        ):
            raise RuntimeError(
                "EventInjector needs an attached, enabled Tracer "
                "(the NULL_TRACER records nothing to trigger on)"
            )
        if self._armed:
            raise RuntimeError("injector already started")
        self._armed = True
        self.sim.fault_injectors += 1
        tracer.add_listener(self._on_trace_event)

    def stop(self) -> None:
        if self._armed:
            self._armed = False
            self.sim.fault_injectors -= 1
            self.sim.tracer.remove_listener(self._on_trace_event)

    def _on_trace_event(self, ev) -> None:
        if not self._armed or not self.match(ev):
            return
        self.seen += 1
        if self.seen < self.count:
            return
        self.stop()
        timer = self.sim.timeout(self.delay)
        timer.callbacks.append(lambda _e: self._fire())

    def _fire(self) -> None:
        self.fired_at = self.sim.now
        if self.sim.metrics.enabled:
            self.sim.metrics.counter("failures.injected", type="event").inc()
        self.action()


class MtbfInjector:
    """Kill one uniformly random *live* node every Exp(MTBF) seconds."""

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        mtbf_seconds: float,
        kill: Callable[[int], None],
        num_nodes: int,
    ):
        if mtbf_seconds <= 0:
            raise ValueError("MTBF must be positive")
        self.sim = sim
        self.rng = rng
        self.mtbf = mtbf_seconds
        self.kill = kill
        self.num_nodes = num_nodes
        self.kill_times: List[float] = []
        self._running = False

    def start(self) -> None:
        if not self._running:
            self.sim.fault_injectors += 1
        self._running = True
        self.sim.spawn(self._arrivals(), name="mtbf-injector")

    def stop(self) -> None:
        if self._running:
            self._running = False
            self.sim.fault_injectors -= 1

    def _arrivals(self):
        while self._running:
            gap = float(self.rng.exponential(self.mtbf))
            yield self.sim.timeout(gap)
            if not self._running:
                return
            victim = int(self.rng.integers(self.num_nodes))
            self.kill_times.append(self.sim.now)
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "failure.inject", "failure", type="mtbf", nodes=[victim],
                )
            if self.sim.metrics.enabled:
                self.sim.metrics.counter("failures.injected", type="mtbf").inc()
            self.kill(victim)


class LimpInjector:
    """Gray-failure injector: random nodes limp for random windows.

    Every Exp(``mean_interval``) seconds a uniformly random *live,
    healthy* node has its network path degraded (``set_limp``) for an
    Exp(``mean_duration``) window, then restored -- the slow-but-alive
    failure mode that crash injectors cannot produce.  Degradation
    factors are drawn uniformly from ``bw_factors`` x
    ``latency_factors``.  ``episodes`` records
    ``(start, end, node, bw_factor, latency_factor)``.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        nodes: Sequence,
        mean_interval: float,
        mean_duration: float,
        bw_factors: Sequence[float] = (4.0, 16.0),
        latency_factors: Sequence[float] = (2.0, 8.0),
    ):
        if mean_interval <= 0 or mean_duration <= 0:
            raise ValueError("mean_interval and mean_duration must be positive")
        if not nodes:
            raise ValueError("need at least one node to limp")
        self.sim = sim
        self.rng = rng
        self.nodes = list(nodes)
        self.mean_interval = mean_interval
        self.mean_duration = mean_duration
        self.bw_factors = list(bw_factors)
        self.latency_factors = list(latency_factors)
        self.episodes: List[Tuple[float, float, int, float, float]] = []
        self._running = False

    def start(self) -> None:
        if not self._running:
            self.sim.fault_injectors += 1
        self._running = True
        self.sim.spawn(self._arrivals(), name="limp-injector")

    def stop(self) -> None:
        """Disarm and heal every currently limping node."""
        if self._running:
            self._running = False
            self.sim.fault_injectors -= 1
        for node in self.nodes:
            if node.alive and node.limping:
                node.clear_limp()

    def _arrivals(self):
        while self._running:
            gap = float(self.rng.exponential(self.mean_interval))
            yield self.sim.timeout(gap)
            if not self._running:
                return
            healthy = [n for n in self.nodes if n.alive and not n.limping]
            if not healthy:
                continue
            node = healthy[int(self.rng.integers(len(healthy)))]
            bw = float(self.bw_factors[int(self.rng.integers(len(self.bw_factors)))])
            lat = float(
                self.latency_factors[int(self.rng.integers(len(self.latency_factors)))]
            )
            duration = float(self.rng.exponential(self.mean_duration))
            start = self.sim.now
            node.set_limp(bw, lat)
            self.episodes.append((start, start + duration, node.id, bw, lat))
            yield self.sim.timeout(duration)
            if node.alive and node.limping:
                node.clear_limp()
