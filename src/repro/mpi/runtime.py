"""MPI job launch and the fail-stop model.

An :class:`MpiJob` spawns one process per rank (block placement,
``procs_per_node`` ranks per node), charges the modelled ``MPI_Init``
cost through a PMGR rendezvous, and then runs the application.  If
*any* rank dies -- a node crash, an injected kill, an uncaught
exception -- the whole job is torn down (every surviving rank killed)
and the job event fails with :class:`JobAborted`.  That is MPI's
fail-stop contract, the thing FMI exists to avoid.

The launch machinery (allocation, context table, rank spawning, abort)
lives in :mod:`repro.runtime`; this module is only the MPI-specific
glue: the :class:`~repro.runtime.policy.FailStop` policy plus a rank
body that runs ``MPI_Init`` and hands the application an
:class:`~repro.mpi.api.MpiApi`.

:class:`MpiRestartDriver` is the ``mpirun``-in-a-batch-script loop of
traditional C/R: relaunch the job after each abort (replacing dead
nodes through the resource manager, keeping rank→node placement stable
so SCR finds its node-local checkpoints), paying the job relaunch
latency and a fresh ``MPI_Init`` every time.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.cluster.machine import Machine
from repro.cluster.node import Node
from repro.mpi.api import MpiApi
from repro.runtime.core import JobAborted, JobBase, RankProcess
from repro.runtime.policy import FailStop

__all__ = ["MpiJob", "JobAborted", "MpiRestartDriver"]

AppFactory = Callable[[MpiApi], Any]  # callable(api) -> generator


class MpiRankProcess(RankProcess):
    """One MPI rank: boot, ``MPI_Init`` rendezvous, run the app."""

    def __init__(self, job: "MpiJob", rank: int, node: Node, rendezvous):
        self.rendezvous = rendezvous
        super().__init__(job, rank, node)

    def _body(self):
        job = self.job
        yield self.rendezvous.arrive()  # MPI_Init
        if self.rank == 0:
            job.init_done_at = self.sim.now
        api = MpiApi(job.transport, self.ctx, self.rank, job.num_ranks,
                     job.addr_table)
        api.job = job  # SCR & apps reach machine-level services through this
        result = yield from job.app(api)
        return result


class MpiJob(JobBase):
    """One launch of an MPI application (one ``srun``/``mpirun``)."""

    def __init__(
        self,
        machine: Machine,
        app: AppFactory,
        nprocs: int,
        procs_per_node: int = 1,
        nodes: Optional[List[Node]] = None,
        charge_init: bool = True,
        name: str = "mpi",
        alloc=None,
        job_id: Optional[str] = None,
    ):
        super().__init__(
            machine, app, nprocs, procs_per_node,
            policy=FailStop(nodes=nodes, charge_init=charge_init),
            name=name,
            sw_overhead=machine.spec.network.sw_overhead_mpi,
            alloc=alloc, job_id=job_id,
        )

    # -- compatibility aliases ------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.num_ranks

    @property
    def charge_init(self) -> bool:
        return self.policy.charge_init

    @property
    def _procs(self):
        """The raw simulated processes, rank order (tests/observability)."""
        return [self.rank_procs[r].proc for r in sorted(self.rank_procs)]

    # -- rank factory ---------------------------------------------------------
    def make_rank_process(self, rank: int, node: Node, rendezvous=None,
                          **kwargs) -> MpiRankProcess:
        return MpiRankProcess(self, rank, node, rendezvous)


class MpiRestartDriver:
    """Traditional C/R execution: relaunch the fail-stop job until the
    application completes.

    Keeps rank→node placement stable across restarts so SCR's
    node-local (tmpfs) checkpoints are where the ranks expect them;
    dead nodes are replaced through the resource manager and their
    ranks rebuild from the XOR group.
    """

    def __init__(
        self,
        machine: Machine,
        app: AppFactory,
        nprocs: int,
        procs_per_node: int = 1,
        max_restarts: Optional[int] = None,
        name: str = "mpirun",
    ):
        self.machine = machine
        self.sim = machine.sim
        self.app = app
        self.nprocs = nprocs
        self.ppn = procs_per_node
        self.max_restarts = max_restarts
        self.name = name
        self.restarts = 0
        self.num_nodes = nprocs // procs_per_node
        self.jobs: List[MpiJob] = []

    def run(self):
        """Generator: drive launches until success; returns rank results."""
        alloc = self.machine.rm.allocate(self.num_nodes)
        nodes = list(alloc.nodes)
        try:
            while True:
                # Replace dead nodes, keeping slot positions stable.
                # grow() keeps the replacements owned by the allocation
                # so the final release returns them to the pool.
                for i, node in enumerate(nodes):
                    if not node.alive:
                        nodes[i] = yield alloc.grow()
                job = MpiJob(
                    self.machine, self.app, self.nprocs, self.ppn,
                    nodes=nodes, name=f"{self.name}#{self.restarts}",
                )
                self.jobs.append(job)
                try:
                    results = yield job.launch()
                    return results
                except JobAborted:
                    self.restarts += 1
                    if (
                        self.max_restarts is not None
                        and self.restarts > self.max_restarts
                    ):
                        raise
                    # Scheduler tear-down + re-submission latency.
                    yield self.sim.timeout(self.machine.spec.job_relaunch_latency)
        finally:
            alloc.release()
