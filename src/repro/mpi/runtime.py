"""MPI job launch and the fail-stop model.

An :class:`MpiJob` spawns one process per rank (block placement,
``procs_per_node`` ranks per node), charges the modelled ``MPI_Init``
cost through a PMGR rendezvous, and then runs the application.  If
*any* rank dies -- a node crash, an injected kill, an uncaught
exception -- the whole job is torn down (every surviving rank killed)
and the job event fails with :class:`JobAborted`.  That is MPI's
fail-stop contract, the thing FMI exists to avoid.

:class:`MpiRestartDriver` is the ``mpirun``-in-a-batch-script loop of
traditional C/R: relaunch the job after each abort (replacing dead
nodes through the resource manager, keeping rank→node placement stable
so SCR finds its node-local checkpoints), paying the job relaunch
latency and a fresh ``MPI_Init`` every time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.machine import Machine
from repro.cluster.node import Node
from repro.mpi.api import MpiApi
from repro.net.pmgr import PmgrRendezvous
from repro.net.transport import Transport
from repro.simt.kernel import Event
from repro.simt.process import Process

__all__ = ["MpiJob", "JobAborted", "MpiRestartDriver"]

AppFactory = Callable[[MpiApi], Any]  # callable(api) -> generator


class JobAborted(RuntimeError):
    """The fail-stop tear-down: some rank died, so every rank died."""

    def __init__(self, cause: Any):
        super().__init__(f"MPI job aborted: {cause}")
        self.cause = cause


class MpiJob:
    """One launch of an MPI application (one ``srun``/``mpirun``)."""

    def __init__(
        self,
        machine: Machine,
        app: AppFactory,
        nprocs: int,
        procs_per_node: int = 1,
        nodes: Optional[List[Node]] = None,
        charge_init: bool = True,
        name: str = "mpi",
    ):
        if nprocs < 1 or procs_per_node < 1:
            raise ValueError("nprocs and procs_per_node must be >= 1")
        if nprocs % procs_per_node != 0:
            raise ValueError("nprocs must be a multiple of procs_per_node")
        self.machine = machine
        self.sim = machine.sim
        self.app = app
        self.nprocs = nprocs
        self.ppn = procs_per_node
        self.name = name
        self.num_nodes = nprocs // procs_per_node
        self._own_alloc = None
        if nodes is None:
            self._own_alloc = machine.rm.allocate(self.num_nodes)
            nodes = self._own_alloc.nodes
        if len(nodes) < self.num_nodes:
            raise ValueError("not enough nodes for the requested ranks")
        self.nodes = nodes[: self.num_nodes]
        self.charge_init = charge_init
        spec = machine.spec
        self.transport = Transport(machine, sw_overhead=spec.network.sw_overhead_mpi)
        self.done: Event = self.sim.event()
        self._results: Dict[int, Any] = {}
        self._procs: List[Process] = []
        self._aborting = False
        #: simulated time MPI_Init completed (None until then); Fig 14's metric
        self.init_done_at: Optional[float] = None
        self.launched_at: Optional[float] = None

    # -- helpers ------------------------------------------------------------
    def node_of_rank(self, rank: int) -> Node:
        return self.nodes[rank // self.ppn]

    # -- launch ----------------------------------------------------------------
    def launch(self) -> Event:
        """Start the job; returns the job-completion event (value: the
        list of per-rank app return values)."""
        if self.launched_at is not None:
            raise RuntimeError("job already launched")
        self.launched_at = self.sim.now
        spec = self.machine.spec
        init_cost = spec.mpi_init_time(self.nprocs) if self.charge_init else 0.0
        rendezvous = PmgrRendezvous(self.sim, self.nprocs, cost=init_cost)

        self._static_table: Dict[int, Tuple[int, int]] = {}
        contexts = []
        for rank in range(self.nprocs):
            node = self.node_of_rank(rank)
            if not node.alive:
                self._abort(f"launch onto dead node {node.id}")
                return self.done
            ctx = self.transport.create_context(node, f"{self.name}:r{rank}")
            contexts.append(ctx)
            self._static_table[rank] = ctx.addr
        for rank, ctx in enumerate(contexts):
            node = self.node_of_rank(rank)
            proc = node.spawn(
                self._rank_main(rank, node, ctx, rendezvous),
                name=f"{self.name}:rank{rank}",
            )
            self._procs.append(proc)
            proc.callbacks.append(self._rank_finished(rank))
        if self._own_alloc is not None:
            self.done.callbacks.append(lambda _e: self._own_alloc.release())
        return self.done

    def _rank_main(self, rank: int, node: Node, ctx, rendezvous):
        spec = self.machine.spec
        yield self.sim.timeout(spec.proc_spawn_latency + spec.exec_load_latency)
        yield rendezvous.arrive()  # MPI_Init
        if rank == 0:
            self.init_done_at = self.sim.now
        api = MpiApi(self.transport, ctx, rank, self.nprocs, self._static_table)
        api.job = self  # SCR & apps reach machine-level services through this
        result = yield from self.app(api)
        return result

    # -- completion & abort -------------------------------------------------------
    def _rank_finished(self, rank: int):
        def cb(proc_evt) -> None:
            if self.done.triggered:
                return
            if proc_evt._ok:
                self._results[rank] = proc_evt._value
                if len(self._results) == self.nprocs:
                    self.done.succeed([self._results[r] for r in range(self.nprocs)])
            else:
                self._abort(proc_evt._value)

        return cb

    def _abort(self, cause: Any) -> None:
        if self._aborting:
            return
        self._aborting = True
        for proc in self._procs:
            if proc.alive:
                proc.kill(cause="job-abort")
        if not self.done.triggered:
            self.done.fail(JobAborted(cause))


class MpiRestartDriver:
    """Traditional C/R execution: relaunch the fail-stop job until the
    application completes.

    Keeps rank→node placement stable across restarts so SCR's
    node-local (tmpfs) checkpoints are where the ranks expect them;
    dead nodes are replaced through the resource manager and their
    ranks rebuild from the XOR group.
    """

    def __init__(
        self,
        machine: Machine,
        app: AppFactory,
        nprocs: int,
        procs_per_node: int = 1,
        max_restarts: Optional[int] = None,
        name: str = "mpirun",
    ):
        self.machine = machine
        self.sim = machine.sim
        self.app = app
        self.nprocs = nprocs
        self.ppn = procs_per_node
        self.max_restarts = max_restarts
        self.name = name
        self.restarts = 0
        self.num_nodes = nprocs // procs_per_node
        self.jobs: List[MpiJob] = []

    def run(self):
        """Generator: drive launches until success; returns rank results."""
        alloc = self.machine.rm.allocate(self.num_nodes)
        nodes = list(alloc.nodes)
        try:
            while True:
                # Replace dead nodes, keeping slot positions stable.
                for i, node in enumerate(nodes):
                    if not node.alive:
                        nodes[i] = yield self.machine.rm.request_replacement()
                job = MpiJob(
                    self.machine, self.app, self.nprocs, self.ppn,
                    nodes=nodes, name=f"{self.name}#{self.restarts}",
                )
                self.jobs.append(job)
                try:
                    results = yield job.launch()
                    return results
                except JobAborted:
                    self.restarts += 1
                    if (
                        self.max_restarts is not None
                        and self.restarts > self.max_restarts
                    ):
                        raise
                    # Scheduler tear-down + re-submission latency.
                    yield self.sim.timeout(self.machine.spec.job_relaunch_latency)
        finally:
            alloc.release()
