"""Per-rank messaging APIs.

:class:`ParallelApi` is the shared machinery (send/recv through the
transport, communicators, collectives, compute charging); MPI and FMI
specialise it:

* :class:`MpiApi` routes through a static rank→address table (MPI's
  rank *is* the process) and stamps every envelope with epoch 0.
* ``FmiContext`` (in :mod:`repro.fmi.api`) routes through the job's
  *current* endpoint table, stamps the current recovery epoch, and
  checks the failure-notification flag before every operation -- the
  "all FMI communication calls return an error until recovery" rule.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional, Tuple

from repro.mpi.communicator import WORLD_ID, Communicator
from repro.mpi.datatypes import sizeof, snapshot
from repro.net.matching import ANY_SOURCE, ANY_TAG
from repro.net.message import Envelope
from repro.net.transport import NetContext, Transport

__all__ = ["ParallelApi", "MpiApi", "Request"]


class Request:
    """Handle on a non-blocking operation (MPI_Request).

    ``yield from req.wait()`` completes it (returning received data for
    an ``irecv``); :meth:`done` polls without blocking (MPI_Test).
    """

    __slots__ = ("event", "_is_recv")

    def __init__(self, event, is_recv: bool):
        self.event = event
        self._is_recv = is_recv

    def done(self) -> bool:
        return self.event.processed

    def wait(self):
        result = yield self.event
        if self._is_recv:
            return result.data  # Envelope -> payload
        return None

    @staticmethod
    def waitall(requests):
        """``yield from Request.waitall(reqs)`` -> list of results."""
        out = []
        for req in requests:
            out.append((yield from req.wait()))
        return out


#: buffered-send copy semantics now live in ``datatypes`` (the
#: macro-event collective path shares them); kept under the old name
#: for callers inside this package.
_snapshot = snapshot


class ParallelApi:
    """Common per-rank API: what MPI and FMI semantics share."""

    ANY_SOURCE = ANY_SOURCE
    ANY_TAG = ANY_TAG

    def __init__(self, transport: Transport, ctx: NetContext,
                 world_rank: int, world_size: int):
        self.transport = transport
        self.sim = transport.sim
        self.ctx = ctx
        self.node = ctx.node
        self.world_rank = world_rank
        self.world_size = world_size
        self._comm_seq = WORLD_ID
        self.world = Communicator(self, WORLD_ID, range(world_size))
        #: bytes sent by this rank (observability)
        self.bytes_sent = 0.0
        self.msgs_sent = 0
        #: while > 0, collectives issued through this API must run on
        #: the hop-level engine (checkpoint rendezvous, restore
        #: agreement -- sections where per-hop fidelity is load-bearing)
        self._hop_only = 0

    @contextmanager
    def hop_fidelity(self):
        """Scope in which this rank's collectives are macro-ineligible.

        Callers are collective sections executed by every participating
        rank together (SPMD), so the whole instance lands on the same
        engine.
        """
        self._hop_only += 1
        try:
            yield
        finally:
            self._hop_only -= 1

    # -- specialisation hooks -----------------------------------------------
    def _check_ok(self) -> None:
        """Raise if communication is currently forbidden (FMI hook)."""

    def _epoch(self) -> int:
        return 0

    def _route(self, world_rank: int) -> Tuple[int, int]:
        """World rank -> transport address.  Must be overridden."""
        raise NotImplementedError

    def _stamp(self, env: Envelope, dst_world: int) -> None:
        """Give a recovery plane a look at every outgoing envelope
        (lseq stamping + sender-side logging).  No-op by default."""

    # -- plumbing used by Communicator -----------------------------------------
    def _next_comm_id(self) -> int:
        self._comm_seq += 1
        return self._comm_seq

    def _send(self, comm: Communicator, dst: int, data: Any,
              nbytes: Optional[float], tag: int):
        self._check_ok()
        if not 0 <= dst < comm.size:
            raise ValueError(f"destination rank {dst} out of range")
        if nbytes is None:
            size = sizeof(data)
        else:
            size = nbytes if nbytes.__class__ is float else float(nbytes)
        env = Envelope(
            src=comm.rank, dst=dst, tag=tag, comm_id=comm.id,
            epoch=self._epoch(), nbytes=size, data=_snapshot(data),
        )
        self.bytes_sent += size
        self.msgs_sent += 1
        dst_world = comm.members[dst]
        self._stamp(env, dst_world)
        return self.transport.send(self.ctx, self._route(dst_world), env)

    def _post_recv(self, comm: Communicator, source: int, tag: int):
        self._check_ok()
        return self.ctx.matching.post(source, tag, comm.id)

    # -- world-communicator sugar -----------------------------------------------
    @property
    def rank(self) -> int:
        return self.world_rank

    @property
    def size(self) -> int:
        return self.world_size

    def send(self, dst: int, data: Any, nbytes: Optional[float] = None,
             tag: int = 0):
        return self.world.send_async(dst, data, nbytes, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        return self.world.recv(source, tag)

    def sendrecv(self, dst: int, data: Any, source: int = ANY_SOURCE,
                 nbytes: Optional[float] = None, tag: int = 0):
        return self.world.sendrecv(dst, data, source, nbytes, tag)

    def isend(self, dst: int, data: Any, nbytes: Optional[float] = None,
              tag: int = 0) -> Request:
        """Non-blocking send; complete with ``yield from req.wait()``."""
        return Request(self.world.send_async(dst, data, nbytes, tag), is_recv=False)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``wait()`` returns the payload."""
        return Request(self.world.post_recv(source, tag), is_recv=True)

    def barrier(self):
        return self.world.barrier()

    def bcast(self, value: Any = None, root: int = 0, nbytes=None):
        return self.world.bcast(value, root, nbytes)

    def reduce(self, value: Any, op=None, root: int = 0, nbytes=None):
        return self.world.reduce(value, op, root, nbytes)

    def allreduce(self, value: Any, op=None, nbytes=None):
        return self.world.allreduce(value, op, nbytes)

    def gather(self, value: Any, root: int = 0, nbytes=None):
        return self.world.gather(value, root, nbytes)

    def allgather(self, value: Any, nbytes=None):
        return self.world.allgather(value, nbytes)

    def scatter(self, values=None, root: int = 0, nbytes=None):
        return self.world.scatter(values, root, nbytes)

    def alltoall(self, values, nbytes=None):
        return self.world.alltoall(values, nbytes)

    # -- local work -----------------------------------------------------------
    def compute(self, flops: float):
        """Event charging ``flops`` of stencil-grade compute time."""
        return self.node.compute(flops)

    def elapse(self, seconds: float):
        """Event charging raw wall time (I/O waits, sleeps...)."""
        return self.sim.timeout(seconds)

    def memcpy(self, nbytes: float):
        return self.node.memcpy(nbytes)

    @property
    def now(self) -> float:
        return self.sim.now


class MpiApi(ParallelApi):
    """The fail-stop MPI flavour: static routing, epoch always 0."""

    def __init__(self, transport: Transport, ctx: NetContext,
                 world_rank: int, world_size: int,
                 addr_table: Dict[int, Tuple[int, int]]):
        super().__init__(transport, ctx, world_rank, world_size)
        self._addr_table = addr_table

    def _route(self, world_rank: int) -> Tuple[int, int]:
        return self._addr_table[world_rank]
