"""Communicators: ordered groups of ranks with an id for matching.

A communicator holds *logical* ranks; translation to a physical
process address happens at send time through the owning API's routing
table.  That indirection is exactly what FMI virtualises: after a
recovery the same communicator object keeps working because only the
route changed (Section IV-D, "Transparent Communicator Recovery").

``dup``/``split`` are collective generators.  Context ids are assigned
from a per-process counter; since communicator creation is collective
and SPMD programs execute those calls in the same global order, every
member derives the same id -- the standard MPI context-id argument.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.mpi import collectives
from repro.mpi.ops import SUM
from repro.net.matching import ANY_SOURCE, ANY_TAG

__all__ = ["Communicator"]

WORLD_ID = 0


class Communicator:
    """An ordered rank group bound to one :class:`ParallelApi`."""

    def __init__(self, api, comm_id: int, members: List[int]):
        if api.world_rank not in members:
            raise ValueError("cannot build a communicator I am not a member of")
        self.api = api
        self.id = comm_id
        # A ``range`` is kept as-is: it is immutable, O(1) to index both
        # ways, and costs no per-rank memory -- at 16k ranks a copied
        # world members list would be O(n^2) bytes across the job.
        self.members = members if type(members) is range else list(members)
        self.rank = self.members.index(api.world_rank)
        self.size = len(self.members)

    # -- point-to-point (events) ------------------------------------------
    def send_async(self, dst: int, data: Any, nbytes: Optional[float] = None,
                   tag: int = 0):
        """Event firing when the message has been moved (buffered send)."""
        return self.api._send(self, dst, data, nbytes, tag)

    def post_recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Event firing with the matching :class:`Envelope`."""
        return self.api._post_recv(self, source, tag)

    # -- point-to-point (generators) ----------------------------------------
    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """``data = yield from comm.recv(src)``"""
        env = yield self.post_recv(source, tag)
        return env.data

    def sendrecv(self, dst: int, data: Any, source: int = ANY_SOURCE,
                 nbytes: Optional[float] = None, tag: int = 0):
        """Concurrent send+receive (deadlock-free ring/halo building block)."""
        recv_evt = self.post_recv(source, tag)
        send_evt = self.send_async(dst, data, nbytes, tag)
        env = yield recv_evt
        yield send_evt
        return env.data

    # -- collectives (generators) ----------------------------------------------
    def barrier(self):
        return collectives.barrier(self)

    def bcast(self, value: Any = None, root: int = 0, nbytes: Optional[float] = None):
        return collectives.bcast(self, value, root, nbytes)

    def reduce(self, value: Any, op=None, root: int = 0, nbytes=None):
        return collectives.reduce(self, value, op or SUM, root, nbytes)

    def allreduce(self, value: Any, op=None, nbytes: Optional[float] = None):
        return collectives.allreduce(self, value, op or SUM, nbytes)

    def gather(self, value: Any, root: int = 0, nbytes=None):
        return collectives.gather(self, value, root, nbytes)

    def allgather(self, value: Any, nbytes: Optional[float] = None):
        return collectives.allgather(self, value, nbytes)

    def scatter(self, values=None, root: int = 0, nbytes=None):
        return collectives.scatter(self, values, root, nbytes)

    def alltoall(self, values, nbytes: Optional[float] = None):
        return collectives.alltoall(self, values, nbytes)

    # -- construction of derived communicators ------------------------------------
    def dup(self):
        """Collective duplicate (same members, fresh context id)."""
        yield from self.barrier()  # the agreement round
        new_id = self.api._next_comm_id()
        return Communicator(self.api, new_id, self.members)

    def split(self, color: Optional[int], key: Optional[int] = None):
        """Collective split by ``color``; rank order within each child
        follows ``(key, old rank)``.  ``color=None`` opts out
        (returns ``None``)."""
        me = (color, self.rank if key is None else key, self.rank)
        entries = yield from self.allgather(me, nbytes=24.0)
        seq = self.api._next_comm_id()
        if color is None:
            return None
        colors = sorted({c for c, _k, _r in entries if c is not None})
        color_index = colors.index(color)
        mine = sorted(
            (k, r) for c, k, r in entries if c == color
        )
        members = [self.members[r] for _k, r in mine]
        new_id = (seq << 20) | color_index
        return Communicator(self.api, new_id, members)

    def translate(self, local_rank: int) -> int:
        """Local rank -> world rank."""
        return self.members[local_rank]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Comm id={self.id} rank={self.rank}/{self.size}>"
