"""SCR -- the Scalable Checkpoint/Restart library (the MPI-side C/R).

The paper's baseline writes checkpoints "to memory via a file system"
(tmpfs) with the same XOR encoding FMI uses, plus optional level-2
copies to the parallel filesystem.  We reuse the XOR engine with the
:class:`~repro.fmi.checkpoint.TmpfsStorage` adapter; the filesystem
detour (bandwidth + open latency) is what makes MPI+C ~10 % slower
than FMI+C in Fig 15.

Because MPI is fail-stop, SCR is *application-driven*: the app calls
:meth:`Scr.restart` at startup (after a relaunch it finds the latest
dataset, rebuilding a replaced node's files from the XOR group) and
:meth:`Scr.checkpoint` inside its loop.  ``need_checkpoint`` implements
the same fixed-interval / Vaidya-MTBF policy as FMI_Loop.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.fmi.checkpoint import CheckpointEngine, TmpfsStorage
from repro.fmi.config import FmiConfig
from repro.fmi.redundancy import make_scheme
from repro.fmi.interval import IntervalPolicy
from repro.fmi.payload import Payload
from repro.fmi.xor_group import XorGroupLayout
from repro.mpi.api import MpiApi
from repro.mpi.communicator import Communicator

__all__ = ["Scr"]

#: reserved communicator-id space for SCR's XOR groups
SCR_COMM_BASE = 1 << 29


class Scr:
    """Per-rank SCR context (create one inside the application)."""

    def __init__(
        self,
        api: MpiApi,
        procs_per_node: int,
        group_size: int = 16,
        interval: Optional[int] = None,
        mtbf_seconds: Optional[float] = None,
        scheme: str = "xor",
        recovery: str = "global",
    ):
        from repro.fmi.config import check_recovery_mode

        check_recovery_mode(recovery)
        if recovery == "logged":
            raise ValueError(
                "recovery='logged' needs the survivable FMI runtime: "
                "fail-stop MPI relaunches the whole job, so there are "
                "no survivors to replay message logs (use FmiJob with "
                "FmiConfig(recovery='logged'))"
            )
        self.api = api
        group = min(group_size, api.size // procs_per_node)
        self.layout = XorGroupLayout(api.size, procs_per_node, group)
        gid = self.layout.group_of(api.rank)
        self.group_comm = Communicator(
            api, SCR_COMM_BASE + gid, self.layout.members(gid)
        )
        self.storage = TmpfsStorage(api.node, prefix=f"scr/r{api.rank}")
        self.engine = CheckpointEngine(self.group_comm, self.storage,
                                       api.memcpy, scheme=make_scheme(scheme))
        self.policy = IntervalPolicy(
            FmiConfig(interval=interval, mtbf_seconds=mtbf_seconds,
                      xor_group_size=max(2, group))
        )
        self.checkpoints_written = 0

    # -- write path --------------------------------------------------------
    def need_checkpoint(self) -> bool:
        """Local interval decision (use the collective form inside
        SPMD loops so a time-based policy cannot split the ranks)."""
        return self.policy.should_checkpoint(self.api.now)

    def need_checkpoint_collective(self):
        """Job-wide checkpoint decision: any rank's yes is everyone's."""
        from repro.mpi.ops import MAX

        want = self.policy.should_checkpoint(self.api.now)
        agreed = yield from self.api.allreduce(1 if want else 0, MAX)
        return bool(agreed)

    def checkpoint(self, buffers: Sequence[np.ndarray], dataset_id: int,
                   nbytes: Optional[Sequence[float]] = None):
        """Level-1 checkpoint: tmpfs write + XOR encode across nodes."""
        t0 = self.api.now
        payloads = [self._as_payload(b, i, nbytes) for i, b in enumerate(buffers)]
        meta = yield from self.engine.checkpoint(payloads, dataset_id)
        self.policy.record_checkpoint(self.api.now, self.api.now - t0)
        self.checkpoints_written += 1
        return meta

    def flush_to_pfs(self, dataset_id: int):
        """Level-2: copy the local checkpoint blob to the PFS."""
        blob = yield from self.storage.load(f"ckpt@{dataset_id}")
        machine = self.api.job.machine
        yield machine.pfs.write(
            f"scr/l2/ds{dataset_id}/rank{self.api.rank}",
            blob.tobytes(),
            nbytes=blob.nbytes,
        )

    # -- read path -----------------------------------------------------------
    def restart(self):
        """Find and restore the latest dataset after a (re)launch.

        Returns ``(dataset_id, payloads)`` or ``None`` on a cold start.
        Rebuilds a missing member's files from the XOR group when a
        replacement node joined the allocation.
        """

        def agree(candidate: int):
            from repro.mpi.ops import MIN

            result = yield from self.api.allreduce(candidate, MIN)
            return result

        restored = yield from self.engine.restore(world_agree=agree)
        if restored is None:
            return None
        meta, payloads = restored
        self.policy.reset_after_recovery(self.api.now)
        return meta.dataset_id, payloads

    def restore_into(self, buffers: Sequence[np.ndarray], payloads: List[Payload]):
        """Copy restored payloads into application arrays."""
        if len(buffers) != len(payloads):
            raise ValueError("buffer/payload count mismatch")
        total = sum(p.nbytes for p in payloads)
        yield self.api.memcpy(total)
        for buf, payload in zip(buffers, payloads):
            if isinstance(buf, Payload):
                buf.data[:] = payload.data
                buf.nbytes = payload.nbytes
            else:
                flat = buf.view(np.uint8).reshape(-1)
                flat[:] = payload.data

    @staticmethod
    def _as_payload(buf, index: int, nbytes) -> Payload:
        declared = None if nbytes is None else float(nbytes[index])
        if isinstance(buf, Payload):
            return buf if declared is None else Payload(buf.data, nbytes=declared)
        return Payload(np.ascontiguousarray(buf).copy(), nbytes=declared)
