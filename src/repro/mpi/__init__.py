"""repro.mpi -- a fail-stop MPI baseline on the simulated cluster.

This is the comparison system of the paper's evaluation: MVAPICH2-like
messaging (Table III), SLURM-launched jobs whose *every* process dies
on any node failure, ``mpirun``-style relaunch, and the SCR multilevel
checkpointing library (:mod:`repro.mpi.scr`) writing through the
filesystem.

The per-rank API (:class:`~repro.mpi.api.MpiApi`) and the collective
algorithms (:mod:`~repro.mpi.collectives`) are shared with FMI --
"FMI provides message-passing semantics similar to MPI" -- the FMI
context subclasses the same base.
"""

from repro.mpi.api import MpiApi, ParallelApi
from repro.mpi.communicator import Communicator
from repro.mpi.ops import MAX, MIN, PROD, SUM
from repro.mpi.runtime import JobAborted, MpiJob

__all__ = [
    "Communicator",
    "JobAborted",
    "MAX",
    "MIN",
    "MpiApi",
    "MpiJob",
    "PROD",
    "ParallelApi",
    "SUM",
]
