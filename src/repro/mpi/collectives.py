"""Collective algorithms over a communicator.

Two engines sit behind every public collective:

* The **hop-level** engine (the ``*_hops`` generators): real
  message-passing algorithms, not analytic shortcuts -- the cost of a
  collective emerges from the individual messages moving through the
  simulated fabric, so log-scaling, NIC contention and message-size
  effects come out of the same calibrated constants as everything
  else.  This is the conformance oracle: its behaviour is the ground
  truth the fast path is tested against.
* The **macro-event** fast path (:mod:`repro.mpi.macro`): when
  nothing makes per-hop fidelity load-bearing, the whole collective
  becomes one closed-form-priced kernel event.  That is what makes
  16k-rank simulations tractable.

Selection -- mirroring the matching-engine seam in
:mod:`repro.net.matching` -- reads ``REPRO_COLLECTIVES``:

* ``auto`` (default): macro when eligible, transparent fallback to
  hops under chaos/faults/partitions/limping/tracing/msglog/
  checkpoint-rendezvous;
* ``hops``: always the hop-level engine;
* ``macro``: macro even under tracing (hard blockers still fall
  back); for scale benchmarks that want the fast path unconditionally.

Tests can override programmatically with :func:`set_collective_mode`.

Hop-level algorithms (the usual MPICH choices):

* ``bcast``      -- binomial tree
* ``reduce``     -- binomial tree (commutative ops)
* ``allreduce``  -- recursive doubling with the standard fold-in
                    pre/post steps for non-power-of-two sizes
* ``barrier``    -- dissemination
* ``gather``     -- binomial tree
* ``allgather``  -- ring
* ``scatter``    -- linear from root (small comms only in our apps)
* ``alltoall``   -- ring-schedule pairwise exchange

Every function is a generator to drive with ``yield from``; the comm
object supplies ``rank``, ``size``, ``send_async(dst, data, nbytes,
tag)`` and ``post_recv(src, tag)``.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional

from repro.mpi.datatypes import sizeof, wire_bytes
from repro.mpi.ops import SUM

__all__ = [
    "bcast",
    "reduce",
    "allreduce",
    "barrier",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "allreduce_hier",
    "bcast_hops",
    "reduce_hops",
    "allreduce_hops",
    "barrier_hops",
    "gather_hops",
    "allgather_hops",
    "scatter_hops",
    "alltoall_hops",
    "allreduce_hier_hops",
    "collective_mode",
    "set_collective_mode",
    "TAG_BCAST",
    "TAG_REDUCE",
    "TAG_ALLREDUCE",
    "TAG_BARRIER",
    "TAG_GATHER",
    "TAG_ALLGATHER",
    "TAG_SCATTER",
    "TAG_ALLTOALL",
]

# Reserved tag space, far above anything applications use.  Collectives
# of the same kind on the same communicator match FIFO pairwise, so a
# single tag per kind is safe (the usual MPI-internals trick).
_BASE = 1 << 24
TAG_BCAST = _BASE + 1
TAG_REDUCE = _BASE + 2
TAG_ALLREDUCE = _BASE + 3
TAG_BARRIER = _BASE + 4
TAG_GATHER = _BASE + 5
TAG_ALLGATHER = _BASE + 6
TAG_SCATTER = _BASE + 7
TAG_ALLTOALL = _BASE + 8
TAG_HIER_UP = _BASE + 9
TAG_HIER_DOWN = _BASE + 10

_TINY = 4.0  # bytes of a zero-payload control message

#: byte pricing shared with the macro path (repro.mpi.datatypes)
_nbytes = wire_bytes


# -- engine selection (same seam shape as net.matching) ----------------------

_VALID_MODES = ("auto", "hops", "macro")

#: programmatic override; None means "consult the environment"
_MODE: Optional[str] = None


def _resolve_default() -> str:
    mode = os.environ.get("REPRO_COLLECTIVES", "auto").strip().lower()
    if mode not in _VALID_MODES:
        raise ValueError(
            f"REPRO_COLLECTIVES={mode!r}: expected one of {_VALID_MODES}"
        )
    return mode


def collective_mode() -> str:
    """The engine mode collectives currently dispatch under."""
    return _MODE if _MODE is not None else _resolve_default()


def set_collective_mode(mode: Optional[str]) -> Optional[str]:
    """Override the engine mode (``None`` restores env resolution).

    Returns the previous override so tests can save/restore.
    """
    global _MODE
    if mode is not None and mode not in _VALID_MODES:
        raise ValueError(f"unknown collective mode {mode!r}")
    prev = _MODE
    _MODE = mode
    return prev


def _macro_instance(comm, kind: str):
    """Consult the per-transport coordinator; ``None`` means hop path.

    Single-rank communicators never consult (the hop generators
    short-circuit them for free), so per-rank sequence counters stay
    aligned across ranks trivially.
    """
    if comm.size == 1:
        return None
    mode = collective_mode()
    if mode == "hops":
        return None
    transport = comm.api.transport
    macro = transport.macro
    if macro is None:
        from repro.mpi.macro import MacroCollectives

        macro = transport.macro = MacroCollectives(transport)
    return macro.instance(comm, kind, mode)


# -- public dispatchers ------------------------------------------------------


def bcast(comm, value: Any = None, root: int = 0,
          nbytes: Optional[float] = None):
    """Broadcast; returns the root's value everywhere."""
    inst = _macro_instance(comm, "bcast")
    if inst is None:
        return (yield from bcast_hops(comm, value, root, nbytes))
    return (yield from inst.join(comm, (value, root, nbytes)))


def reduce(comm, value: Any, op: Callable = SUM, root: int = 0,
           nbytes: Optional[float] = None):
    """Reduction; returns the result at root, None elsewhere."""
    inst = _macro_instance(comm, "reduce")
    if inst is None:
        return (yield from reduce_hops(comm, value, op, root, nbytes))
    return (yield from inst.join(comm, (value, op, root, nbytes)))


def allreduce(comm, value: Any, op: Callable = SUM,
              nbytes: Optional[float] = None):
    """Allreduce; every rank returns the combined value."""
    inst = _macro_instance(comm, "allreduce")
    if inst is None:
        return (yield from allreduce_hops(comm, value, op, nbytes))
    return (yield from inst.join(comm, (value, op, nbytes)))


def barrier(comm):
    """Barrier; no rank exits before every rank has entered."""
    inst = _macro_instance(comm, "barrier")
    if inst is None:
        return (yield from barrier_hops(comm))
    return (yield from inst.join(comm, ()))


def gather(comm, value: Any, root: int = 0,
           nbytes: Optional[float] = None):
    """Gather; root returns the list ordered by rank, None elsewhere."""
    inst = _macro_instance(comm, "gather")
    if inst is None:
        return (yield from gather_hops(comm, value, root, nbytes))
    return (yield from inst.join(comm, (value, root, nbytes)))


def allgather(comm, value: Any, nbytes: Optional[float] = None):
    """Allgather; every rank returns the list ordered by rank."""
    inst = _macro_instance(comm, "allgather")
    if inst is None:
        return (yield from allgather_hops(comm, value, nbytes))
    return (yield from inst.join(comm, (value, nbytes)))


def scatter(comm, values: Optional[List[Any]] = None, root: int = 0,
            nbytes: Optional[float] = None):
    """Scatter; rank i returns values[i] from the root."""
    inst = _macro_instance(comm, "scatter")
    if inst is None:
        return (yield from scatter_hops(comm, values, root, nbytes))
    return (yield from inst.join(comm, (values, root, nbytes)))


def alltoall(comm, values: List[Any], nbytes: Optional[float] = None):
    """All-to-all personalized exchange; values[i] goes to rank i."""
    inst = _macro_instance(comm, "alltoall")
    if inst is None:
        return (yield from alltoall_hops(comm, values, nbytes))
    return (yield from inst.join(comm, (values, nbytes)))


def allreduce_hier(comm, value: Any, op: Callable = SUM,
                   nbytes: Optional[float] = None,
                   procs_per_node: int = 1):
    """Topology-aware allreduce (see :func:`allreduce_hier_hops`)."""
    inst = _macro_instance(comm, "allreduce_hier")
    if inst is None:
        return (yield from allreduce_hier_hops(
            comm, value, op, nbytes, procs_per_node))
    return (yield from inst.join(
        comm, (value, op, nbytes, max(1, procs_per_node))))


# -- hop-level engine (the conformance oracle) -------------------------------


def bcast_hops(comm, value: Any = None, root: int = 0, nbytes: Optional[float] = None):
    """Binomial-tree broadcast; returns the root's value everywhere."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return value
    relative = (rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            src = (relative - mask + root) % size
            env = yield comm.post_recv(src, TAG_BCAST)
            value = env.data
            nbytes = env.nbytes
            break
        mask <<= 1
    if nbytes is None:
        nbytes = sizeof(value)
    mask >>= 1
    while mask >= 1:
        if relative + mask < size:
            dst = (relative + mask + root) % size
            yield comm.send_async(dst, value, nbytes, TAG_BCAST)
        mask >>= 1
    return value


def reduce_hops(comm, value: Any, op: Callable = SUM, root: int = 0,
                nbytes: Optional[float] = None):
    """Binomial-tree reduction; returns the result at root, None elsewhere."""
    size, rank = comm.size, comm.rank
    nbytes = _nbytes(value, nbytes)
    if size == 1:
        return value
    relative = (rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if relative & mask:
            dst = (relative - mask + root) % size
            yield comm.send_async(dst, acc, nbytes, TAG_REDUCE)
            return None
        src_rel = relative + mask
        if src_rel < size:
            env = yield comm.post_recv((src_rel + root) % size, TAG_REDUCE)
            acc = op(acc, env.data)
        mask <<= 1
    return acc


def allreduce_hops(comm, value: Any, op: Callable = SUM,
                   nbytes: Optional[float] = None):
    """Recursive-doubling allreduce (handles non-power-of-two sizes)."""
    size, rank = comm.size, comm.rank
    nbytes = _nbytes(value, nbytes)
    if size == 1:
        return value
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    acc = value
    newrank = -1
    # Fold the first 2*rem ranks pairwise so pof2 participants remain.
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield comm.send_async(rank + 1, acc, nbytes, TAG_ALLREDUCE)
            newrank = -1  # spectator until the post-step
        else:
            env = yield comm.post_recv(rank - 1, TAG_ALLREDUCE)
            acc = op(acc, env.data)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank != -1:
        def realrank(nr: int) -> int:
            return nr * 2 + 1 if nr < rem else nr + rem

        # Hot loop: hoist the bound methods so each hop pays two local
        # calls instead of repeated attribute walks through the comm.
        post_recv = comm.post_recv
        send_async = comm.send_async
        mask = 1
        while mask < pof2:
            partner = realrank(newrank ^ mask)
            recv_evt = post_recv(partner, TAG_ALLREDUCE)
            yield send_async(partner, acc, nbytes, TAG_ALLREDUCE)
            env = yield recv_evt
            acc = op(acc, env.data)
            mask <<= 1

    # Post-step: odd folded ranks push the result back to their pair.
    if rank < 2 * rem:
        if rank % 2 == 1:
            yield comm.send_async(rank - 1, acc, nbytes, TAG_ALLREDUCE)
        else:
            env = yield comm.post_recv(rank + 1, TAG_ALLREDUCE)
            acc = env.data
    return acc


def barrier_hops(comm):
    """Dissemination barrier: ceil(log2 n) rounds of tiny messages."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    post_recv = comm.post_recv
    send_async = comm.send_async
    mask = 1
    while mask < size:
        dst = (rank + mask) % size
        src = (rank - mask) % size
        recv_evt = post_recv(src, TAG_BARRIER)
        yield send_async(dst, None, _TINY, TAG_BARRIER)
        yield recv_evt
        mask <<= 1


def gather_hops(comm, value: Any, root: int = 0,
                nbytes: Optional[float] = None):
    """Binomial-tree gather; root returns the list ordered by rank."""
    size, rank = comm.size, comm.rank
    nbytes = _nbytes(value, nbytes)
    items = {rank: value}
    if size == 1:
        return [value]
    relative = (rank - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            dst = (relative - mask + root) % size
            yield comm.send_async(dst, items, nbytes * len(items), TAG_GATHER)
            return None
        src_rel = relative + mask
        if src_rel < size:
            env = yield comm.post_recv((src_rel + root) % size, TAG_GATHER)
            items.update(env.data)
        mask <<= 1
    return [items[r] for r in range(size)]


def allgather_hops(comm, value: Any, nbytes: Optional[float] = None):
    """Ring allgather: size-1 steps, each forwarding one block."""
    size, rank = comm.size, comm.rank
    nbytes = _nbytes(value, nbytes)
    blocks: List[Any] = [None] * size
    blocks[rank] = value
    if size == 1:
        return blocks
    right = (rank + 1) % size
    left = (rank - 1) % size
    send_block = rank
    post_recv = comm.post_recv
    send_async = comm.send_async
    for _step in range(size - 1):
        recv_evt = post_recv(left, TAG_ALLGATHER)
        yield send_async(right, (send_block, blocks[send_block]), nbytes, TAG_ALLGATHER)
        env = yield recv_evt
        idx, blk = env.data
        blocks[idx] = blk
        send_block = idx
    return blocks


def scatter_hops(comm, values: Optional[List[Any]] = None, root: int = 0,
                 nbytes: Optional[float] = None):
    """Root sends item i to rank i (linear; fine for small comms)."""
    size, rank = comm.size, comm.rank
    if rank == root:
        if values is None or len(values) != size:
            raise ValueError("root must pass one value per rank")
        for dst in range(size):
            if dst != root:
                # price each destination's own item (an explicit
                # nbytes still applies uniformly)
                yield comm.send_async(
                    dst, values[dst], _nbytes(values[dst], nbytes), TAG_SCATTER
                )
        return values[root]
    env = yield comm.post_recv(root, TAG_SCATTER)
    return env.data


def allreduce_hier_hops(comm, value: Any, op: Callable = SUM,
                        nbytes: Optional[float] = None,
                        procs_per_node: int = 1):
    """Topology-aware allreduce: reduce to a per-node leader through
    shared memory, recursive-double among leaders over the fabric,
    then broadcast back intra-node.

    With block rank placement (ranks ``i*P..i*P+P-1`` on node ``i``)
    this sends only one fabric message per node per round -- the
    standard optimisation for fat nodes, and what keeps the event count
    sane for 1,536-process simulations.
    """
    size, rank = comm.size, comm.rank
    nbytes = _nbytes(value, nbytes)
    P = max(1, procs_per_node)
    if P == 1 or size <= P:
        result = yield from allreduce_hops(comm, value, op, nbytes)
        return result
    if size % P != 0:
        raise ValueError("size must be a multiple of procs_per_node")
    leader = (rank // P) * P
    acc = value
    if rank != leader:
        yield comm.send_async(leader, acc, nbytes, TAG_HIER_UP)
    else:
        post_recv = comm.post_recv
        for _ in range(P - 1):
            env = yield post_recv(-1, TAG_HIER_UP)  # ANY_SOURCE
            acc = op(acc, env.data)
        # Inter-node recursive doubling among the leaders.
        leaders = list(range(0, size, P))
        my_idx = leaders.index(rank)
        n_lead = len(leaders)
        pof2 = 1
        while pof2 * 2 <= n_lead:
            pof2 *= 2
        rem = n_lead - pof2
        newidx = -1
        if my_idx < 2 * rem:
            if my_idx % 2 == 0:
                yield comm.send_async(leaders[my_idx + 1], acc, nbytes, TAG_ALLREDUCE)
            else:
                env = yield comm.post_recv(leaders[my_idx - 1], TAG_ALLREDUCE)
                acc = op(acc, env.data)
                newidx = my_idx // 2
        else:
            newidx = my_idx - rem
        if newidx != -1:
            def real(ni: int) -> int:
                return leaders[ni * 2 + 1] if ni < rem else leaders[ni + rem]

            mask = 1
            while mask < pof2:
                partner = real(newidx ^ mask)
                recv_evt = comm.post_recv(partner, TAG_ALLREDUCE)
                yield comm.send_async(partner, acc, nbytes, TAG_ALLREDUCE)
                env = yield recv_evt
                acc = op(acc, env.data)
                mask <<= 1
        if my_idx < 2 * rem:
            if my_idx % 2 == 1:
                yield comm.send_async(leaders[my_idx - 1], acc, nbytes, TAG_ALLREDUCE)
            else:
                env = yield comm.post_recv(leaders[my_idx + 1], TAG_ALLREDUCE)
                acc = env.data
        # Intra-node broadcast back to my P-1 locals.
        for local in range(leader + 1, leader + P):
            yield comm.send_async(local, acc, nbytes, TAG_HIER_DOWN)
    if rank != leader:
        env = yield comm.post_recv(leader, TAG_HIER_DOWN)
        acc = env.data
    return acc


def alltoall_hops(comm, values: List[Any], nbytes: Optional[float] = None):
    """Pairwise exchange on a ring schedule; values[i] goes to rank i."""
    size, rank = comm.size, comm.rank
    if len(values) != size:
        raise ValueError("alltoall needs one value per rank")
    result: List[Any] = [None] * size
    result[rank] = values[rank]
    post_recv = comm.post_recv
    send_async = comm.send_async
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        recv_evt = post_recv(src, TAG_ALLTOALL)
        # price each destination's own item, not values[0]'s size
        yield send_async(
            dst, values[dst], _nbytes(values[dst], nbytes), TAG_ALLTOALL
        )
        env = yield recv_evt
        result[src] = env.data
    return result
