"""Macro-event collective coordinator: the scale-tier fast path.

When the network is nominal and nobody is watching individual hops,
running a 16k-rank allreduce as tens of thousands of per-message
events buys nothing -- the outcome is fully determined by the
algorithm, the payload sizes and the calibrated fabric constants.
This module exploits that: every rank entering a collective *joins* a
shared per-transport instance instead of exchanging messages; when the
last rank arrives the coordinator

1. replays the hop algorithm's exact data movement in plain Python
   (same fold order, same ``snapshot`` copy points), producing
   byte-identical per-rank results, and
2. prices the collective once with the closed-form model in
   :mod:`repro.models.collective_model`, then schedules a **single**
   :class:`~repro.simt.kernel.BulkCompletion` that resumes every rank
   at ``t_last_join + T_model``.

That last point is the one deliberate approximation: completion is
bulk-synchronous (all ranks resume together at the instance's
completion time), whereas the hop engine lets, say, an early scatter
destination continue before the root has served the rest.  The
conformance suite therefore compares *collective* completion times
(the max over ranks), which the model reproduces.

Eligibility
-----------

A rank consults the coordinator on *every* collective call (keeping
per-rank sequence numbers aligned), but the macro/hop verdict is
latched by the **first** rank to arrive and applies to the whole
instance -- mixed engines within one collective would deadlock.  The
verdict is hop-level whenever:

* the calling rank is inside an :meth:`ParallelApi.hop_fidelity`
  scope (checkpoint rendezvous, restore agreement, msglog replay);
* :meth:`Transport.hop_fidelity_reason` reports armed injectors,
  omission faults, partitions, limping nodes, a recovery filter, or
  enabled tracing/metrics ("observability" is overridden when the
  mode is forced to ``macro``).

Bookkeeping invariants:

* instances are keyed ``(comm_id, kind, n)`` where ``n`` is the
  per-rank call count -- FIFO alignment exactly mirrors the tag-based
  matching of the hop engine;
* :meth:`MacroCollectives.reset` (called from recovery's
  ``begin_recovery`` via :meth:`Transport.macro_reset`) cancels every
  in-flight instance and clears the sequence counters, so a rolled
  back world replays its collective sequence from a clean slate.

The macro path does **not** tick ``api.msgs_sent`` / ``bytes_sent``
or the fabric counters -- there are no messages.  Workloads that
assert on those must run with ``REPRO_COLLECTIVES=hops`` (or under
tracing, which falls back automatically).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.models.collective_model import NetParams, collective_time
from repro.mpi.datatypes import snapshot, wire_bytes
from repro.simt.kernel import _PENDING, BulkCompletion, Event

__all__ = ["MacroCollectives"]

#: bytes of a zero-payload control message (kept in sync with the hop
#: engine's ``collectives._TINY``)
_TINY = 4.0


def _sig(per: List[float]):
    """Hashable size signature: a scalar when uniform (the common
    case, and what keeps the timing memo small), else a tuple."""
    first = per[0]
    for p in per:
        if p != first:
            return tuple(per)
    return first


class _Instance:
    """One collective occurrence: who has arrived, with what args."""

    __slots__ = ("coord", "kind", "size", "verdict", "consulted",
                 "order", "args", "events", "bulk")

    def __init__(self, coord: "MacroCollectives", kind: str, size: int,
                 verdict: Optional[str]):
        self.coord = coord
        self.kind = kind
        self.size = size
        #: None -> macro; otherwise the hop-fidelity reason string
        self.verdict = verdict
        self.consulted = 0
        #: ranks in join order (the hier intra-node fold order)
        self.order: List[int] = []
        # rank-indexed; every slot is filled by the time _complete runs
        self.args: List[Optional[tuple]] = [None] * size
        self.events: List[Optional[Event]] = [None] * size
        self.bulk: Optional[BulkCompletion] = None

    def join(self, comm, args: tuple):
        """Generator a rank drives instead of the hop algorithm.

        Raises exactly what (and when) the hop path would: the FMI
        failure-notification check and the argument validations all
        fire on the caller's first ``next()``.
        """
        api = comm.api
        api._check_ok()
        kind = self.kind
        if kind == "scatter":
            values, root = args[0], args[1]
            if comm.rank == root and (values is None or len(values) != comm.size):
                raise ValueError("root must pass one value per rank")
        elif kind == "alltoall":
            if len(args[0]) != comm.size:
                raise ValueError("alltoall needs one value per rank")
        elif kind == "allreduce_hier":
            P = args[3]
            if 1 < P < comm.size and comm.size % P != 0:
                raise ValueError("size must be a multiple of procs_per_node")
        evt = Event(api.sim)
        self.args[comm.rank] = args
        self.events[comm.rank] = evt
        self.order.append(comm.rank)
        if len(self.order) == self.size:
            self.coord._complete(self, comm)
        result = yield evt
        return result


class MacroCollectives:
    """Per-transport rendezvous for the macro-event fast path.

    One lives lazily on ``transport.macro``; every rank of the job
    shares it, which is what lets a collective become a single object
    instead of a message pattern.
    """

    def __init__(self, transport):
        self.transport = transport
        #: per-rank collective call counters: (comm_id, kind, rank) -> n
        self._seq: Dict[Tuple[int, str, int], int] = {}
        #: instances not yet consulted by every rank
        self._pending: Dict[Tuple[int, str, int], _Instance] = {}
        #: macro instances whose completion has not fired yet
        self._live: set = set()
        #: memoized model times and rank->node placements
        self._times: Dict[tuple, float] = {}
        self._nodes_cache: Dict[int, tuple] = {}
        self._net: Optional[NetParams] = None
        # -- counters (observability without tracing) --
        self.instances_macro = 0
        self.instances_hop = 0
        self.macro_events = 0
        self.resets = 0
        #: hop-fidelity reason -> count
        self.fallbacks: Dict[str, int] = {}

    # -- eligibility ------------------------------------------------------
    def _verdict(self, api, mode: str) -> Optional[str]:
        if api._hop_only:
            return "checkpoint"
        reason = self.transport.hop_fidelity_reason()
        if reason == "observability" and mode == "macro":
            return None  # forced mode trades trace fidelity for speed
        return reason

    def instance(self, comm, kind: str, mode: str) -> Optional[_Instance]:
        """Consult (and advance) this rank's collective sequence.

        Returns the instance to :meth:`_Instance.join` when the
        latched verdict is macro, or ``None`` to send the caller down
        the hop path.  Either way the sequence counter moved, so all
        ranks stay aligned call-for-call.

        Keys carry the caller's recovery epoch -- the macro analogue
        of epoch-stamped envelopes.  A survivor still running the
        pre-failure timeline joins an old-epoch instance that can
        never fill (it blocks until its failure notification arrives,
        exactly as it would on a hop-level recv), while the
        post-recovery replay realigns from call zero under the new
        epoch.
        """
        epoch = comm.api._epoch()
        seq_key = (epoch, comm.id, kind, comm.rank)
        n = self._seq.get(seq_key, 0)
        self._seq[seq_key] = n + 1
        key = (epoch, comm.id, kind, n)
        inst = self._pending.get(key)
        if inst is None:
            verdict = self._verdict(comm.api, mode)
            inst = _Instance(self, kind, comm.size, verdict)
            self._pending[key] = inst
            if verdict is None:
                self.instances_macro += 1
                self._live.add(inst)
            else:
                self.instances_hop += 1
                self.fallbacks[verdict] = self.fallbacks.get(verdict, 0) + 1
        inst.consulted += 1
        if inst.consulted == inst.size:
            del self._pending[key]
        return inst if inst.verdict is None else None

    # -- completion -------------------------------------------------------
    def _complete(self, inst: _Instance, comm) -> None:
        """Last rank arrived: compute results, price, schedule."""
        results, sizes_sig, root, ppn = _FINISH[inst.kind](inst)
        duration = self._duration(comm, inst.kind, sizes_sig, root, ppn)
        batch = [(inst.events[r], results[r]) for r in range(inst.size)]
        inst.bulk = BulkCompletion(self.transport.sim, duration, batch)
        inst.bulk.callbacks.append(lambda _e: self._live.discard(inst))
        self.macro_events += 1

    def _duration(self, comm, kind: str, sizes_sig, root: int,
                  ppn: int) -> float:
        key = (kind, comm.id, root, ppn, sizes_sig)
        t = self._times.get(key)
        if t is None:
            nodes = self._nodes_cache.get(comm.id)
            if nodes is None:
                route = comm.api._route
                nodes = tuple(route(w)[0] for w in comm.members)
                self._nodes_cache[comm.id] = nodes
            if self._net is None:
                self._net = NetParams.from_transport(self.transport)
            t = collective_time(kind, nodes, sizes_sig, self._net,
                                root=root, procs_per_node=ppn)
            self._times[key] = t
        return t

    # -- recovery ---------------------------------------------------------
    def reset(self) -> None:
        """Cancel everything in flight and forget the sequence state.

        Called when a recovery rolls the application back: the
        collective calls that were pending belong to a dead timeline,
        and the replay after restart must realign from call zero.
        Placement/timing memos go too -- a respawned rank may live on
        a different node.
        """
        for inst in self._live:
            if inst.bulk is not None:
                inst.bulk.cancel()
            for evt in inst.events:
                if evt is not None and evt._value is _PENDING and not evt._cancelled:
                    evt.cancel()
        self._live.clear()
        self._pending.clear()
        self._seq.clear()
        self._times.clear()
        self._nodes_cache.clear()
        self.resets += 1


# ---------------------------------------------------------------------------
# Result replay: each function reproduces the hop algorithm's data
# movement exactly -- same fold order, snapshot() at every point the
# hop path's send_async would have copied -- and returns
# (per-rank results, size signature, root, procs_per_node).
# ---------------------------------------------------------------------------


def _finish_bcast(inst: _Instance):
    size, args = inst.size, inst.args
    root = args[0][1]
    value, _, nbytes = args[root]
    b = wire_bytes(value, nbytes)
    # each hop edge copies at the parent's send, so every non-root
    # rank ends up with its own copy of the root's value
    results = [value if r == root else snapshot(value) for r in range(size)]
    return results, b, root, 1


def _allreduce_results(vals: List[Any], ops: List[Any], size: int) -> List[Any]:
    """Recursive doubling, replayed: pairwise pre-fold, the masked
    exchange rounds over simultaneous pre-round accumulators, and the
    post-step push-back."""
    snap = snapshot
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    acc = list(vals)
    for r in range(0, 2 * rem, 2):
        acc[r + 1] = ops[r + 1](acc[r + 1], snap(acc[r]))

    def realrank(nr: int) -> int:
        return nr * 2 + 1 if nr < rem else nr + rem

    ranks = [realrank(nr) for nr in range(pof2)]
    mask = 1
    while mask < pof2:
        cur = [acc[r] for r in ranks]  # both sides send pre-round accs
        for nr in range(pof2):
            a = ranks[nr]
            acc[a] = ops[a](cur[nr], snap(cur[nr ^ mask]))
        mask <<= 1
    for r in range(0, 2 * rem, 2):
        acc[r] = snap(acc[r + 1])
    return acc


def _finish_allreduce(inst: _Instance):
    size, args = inst.size, inst.args
    vals = [args[r][0] for r in range(size)]
    ops = [args[r][1] for r in range(size)]
    per = [wire_bytes(vals[r], args[r][2]) for r in range(size)]
    return _allreduce_results(vals, ops, size), _sig(per), 0, 1


def _finish_reduce(inst: _Instance):
    size, args = inst.size, inst.args
    root = args[0][2]
    per = [wire_bytes(args[r][0], args[r][3]) for r in range(size)]
    # rel-indexed accumulators; mask-major order means a sender's acc
    # is final (all its smaller-mask fold-ins done) when it is folded
    acc = [args[(rel + root) % size][0] for rel in range(size)]
    ops = [args[(rel + root) % size][1] for rel in range(size)]
    mask = 1
    while mask < size:
        for rel in range(0, size - mask, mask << 1):
            acc[rel] = ops[rel](acc[rel], snapshot(acc[rel + mask]))
        mask <<= 1
    results: List[Any] = [None] * size
    results[root] = acc[0]
    return results, _sig(per), root, 1


def _finish_barrier(inst: _Instance):
    return [None] * inst.size, _TINY, 0, 1


def _finish_gather(inst: _Instance):
    size, args = inst.size, inst.args
    root = args[0][1]
    per = [wire_bytes(args[r][0], args[r][2]) for r in range(size)]
    results: List[Any] = [None] * size
    # the dicts pass through snapshot uncopied, so the root's list
    # holds the senders' original objects -- exactly like the hop path
    results[root] = [args[r][0] for r in range(size)]
    return results, _sig(per), root, 1


def _finish_allgather(inst: _Instance):
    size, args = inst.size, inst.args
    vals = [args[r][0] for r in range(size)]
    per = [wire_bytes(vals[r], args[r][1]) for r in range(size)]
    # ring blocks travel inside (idx, blk) tuples, which snapshot
    # passes through -- every rank shares the originals
    results = [list(vals) for _ in range(size)]
    return results, _sig(per), 0, 1


def _finish_scatter(inst: _Instance):
    size, args = inst.size, inst.args
    root = args[0][1]
    values, _, nbytes = args[root]
    per = [wire_bytes(values[d], nbytes) for d in range(size)]
    results = [
        values[r] if r == root else snapshot(values[r]) for r in range(size)
    ]
    return results, _sig(per), root, 1


def _finish_alltoall(inst: _Instance):
    size, args = inst.size, inst.args
    matrix = [
        [wire_bytes(args[s][0][d], args[s][1]) for d in range(size)]
        for s in range(size)
    ]
    flat0 = matrix[0][0]
    uniform = all(m == flat0 for row in matrix for m in row)
    results = []
    for r in range(size):
        row = [
            args[r][0][r] if s == r else snapshot(args[s][0][r])
            for s in range(size)
        ]
        results.append(row)
    sig = flat0 if uniform else tuple(tuple(row) for row in matrix)
    return results, sig, 0, 1


def _finish_hier(inst: _Instance):
    size, args = inst.size, inst.args
    vals = [args[r][0] for r in range(size)]
    ops = [args[r][1] for r in range(size)]
    per = [wire_bytes(vals[r], args[r][2]) for r in range(size)]
    P = args[0][3]
    if P == 1 or size <= P:
        # the hop path delegates to plain allreduce here; so do we
        return _allreduce_results(vals, ops, size), _sig(per), 0, P
    leaders = list(range(0, size, P))
    # the leader folds ANY_SOURCE receives in arrival order; join
    # order is the macro-world equivalent of that delivery order
    pos = {r: i for i, r in enumerate(inst.order)}
    lead_acc = []
    for lead in leaders:
        locals_ = sorted(range(lead + 1, lead + P), key=pos.__getitem__)
        a = vals[lead]
        for r in locals_:
            a = ops[lead](a, snapshot(vals[r]))
        lead_acc.append(a)
    lead_res = _allreduce_results(lead_acc, [ops[l] for l in leaders],
                                  len(leaders))
    results: List[Any] = [None] * size
    for i, lead in enumerate(leaders):
        results[lead] = lead_res[i]
        for r in range(lead + 1, lead + P):
            results[r] = snapshot(lead_res[i])
    return results, _sig(per), 0, P


_FINISH = {
    "bcast": _finish_bcast,
    "reduce": _finish_reduce,
    "allreduce": _finish_allreduce,
    "barrier": _finish_barrier,
    "gather": _finish_gather,
    "allgather": _finish_allgather,
    "scatter": _finish_scatter,
    "alltoall": _finish_alltoall,
    "allreduce_hier": _finish_hier,
}
