"""Wire-size estimation for message payloads."""

from __future__ import annotations

import numpy as np

from repro.fmi.payload import Payload

__all__ = ["sizeof"]

#: envelope/marshalling overhead assumed for small Python objects
_DEFAULT_OBJECT_BYTES = 64.0


def sizeof(data) -> float:
    """Bytes this object occupies on the wire.

    Used when the caller does not pass an explicit ``nbytes``.  NumPy
    arrays and :class:`Payload` report exactly; scalars count 8 bytes;
    containers sum their items; anything else gets a flat estimate.
    """
    if isinstance(data, Payload):
        return data.nbytes
    if isinstance(data, np.ndarray):
        return float(data.nbytes)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return float(len(data))
    if isinstance(data, (bool, type(None))):
        return 1.0
    if isinstance(data, (int, float, complex, np.integer, np.floating)):
        return 8.0
    if isinstance(data, str):
        return float(len(data.encode()))
    if isinstance(data, dict):
        return sum(sizeof(k) + sizeof(v) for k, v in data.items()) or 8.0
    if isinstance(data, (list, tuple, set, frozenset)):
        return sum(sizeof(item) for item in data) or 8.0
    return _DEFAULT_OBJECT_BYTES
