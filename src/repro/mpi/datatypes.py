"""Wire-size estimation for message payloads."""

from __future__ import annotations

import numpy as np

from repro.fmi.payload import Payload

__all__ = ["sizeof", "snapshot", "wire_bytes"]


def wire_bytes(data, nbytes=None) -> float:
    """The byte count a message carrying ``data`` is priced at.

    The caller's explicit ``nbytes`` wins; otherwise the payload is
    sized with :func:`sizeof`.  The hop-level collectives and the
    macro-event cost model both price through this one helper, so the
    two paths can never disagree on byte counts.
    """
    return sizeof(data) if nbytes is None else float(nbytes)


#: exact classes that never need copying -- checked first because the
#: collective fold paths call :func:`snapshot` O(n log n) times per
#: instance and scalar payloads are the overwhelmingly common case
_IMMUTABLE = frozenset({
    int, float, bool, str, bytes, complex, type(None), tuple, frozenset,
})


def snapshot(data):
    """Copy mutable buffers at send time (buffered-send semantics).

    Immutable payloads pass through; the macro-event collective path
    calls this exactly where the hop-level path would have copied at a
    ``send_async``, so both produce byte-identical results.
    """
    if data.__class__ in _IMMUTABLE:
        return data
    if isinstance(data, np.ndarray):
        return data.copy()
    if isinstance(data, Payload):
        return data.copy()
    return data

#: envelope/marshalling overhead assumed for small Python objects
_DEFAULT_OBJECT_BYTES = 64.0


def sizeof(data) -> float:
    """Bytes this object occupies on the wire.

    Used when the caller does not pass an explicit ``nbytes``.  NumPy
    arrays and :class:`Payload` report exactly; scalars count 8 bytes;
    containers sum their items; anything else gets a flat estimate.
    """
    if isinstance(data, Payload):
        return data.nbytes
    if isinstance(data, np.ndarray):
        return float(data.nbytes)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return float(len(data))
    if isinstance(data, (bool, type(None))):
        return 1.0
    if isinstance(data, (int, float, complex, np.integer, np.floating)):
        return 8.0
    if isinstance(data, str):
        return float(len(data.encode()))
    if isinstance(data, dict):
        return sum(sizeof(k) + sizeof(v) for k, v in data.items()) or 8.0
    if isinstance(data, (list, tuple, set, frozenset)):
        return sum(sizeof(item) for item in data) or 8.0
    return _DEFAULT_OBJECT_BYTES
