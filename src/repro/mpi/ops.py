"""Reduction operators for collectives.

Operators are plain binary callables; they must be associative and
commutative (the recursive-doubling allreduce combines in
topology-dependent order).  NumPy arrays combine elementwise.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SUM", "MAX", "MIN", "PROD", "LOR", "LAND"]


def _elementwise(scalar_fn, array_fn):
    def op(a, b):
        # exact-class checks dodge two isinstance calls on the hot
        # scalar path (collective folds apply ops O(n log n) times)
        ta, tb = a.__class__, b.__class__
        if (ta is float or ta is int) and (tb is float or tb is int):
            return scalar_fn(a, b)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return array_fn(a, b)
        return scalar_fn(a, b)

    return op


SUM = _elementwise(lambda a, b: a + b, np.add)
PROD = _elementwise(lambda a, b: a * b, np.multiply)
MAX = _elementwise(max, np.maximum)
MIN = _elementwise(min, np.minimum)
LOR = _elementwise(lambda a, b: bool(a) or bool(b), np.logical_or)
LAND = _elementwise(lambda a, b: bool(a) and bool(b), np.logical_and)
